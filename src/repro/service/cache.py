"""Persistent content-addressed run cache.

The cache stores one zlib-compressed JSON blob per completed
:class:`~repro.analysis.metrics.RunResult`, addressed by the task
fingerprint of :mod:`repro.service.fingerprint`, in a sharded two-level
directory (``<root>/ab/cd/abcd….json.z``) so a million entries never
land in one directory.  Every write goes through the
write-temp/fsync/rename/dir-fsync path of
:func:`repro.resilience.checkpoint.atomic_write_bytes`, so concurrent
writers racing on the same key are safe (last rename wins, never a torn
blob) and a committed entry survives a crash.

Reads verify integrity end to end: the envelope carries the format
version, the fingerprint it was stored under, and a SHA-256 of the
compressed result payload.  A blob that fails any check — bit rot,
truncation, a foreign file — is **quarantined** (deleted, counted) and
reported as a miss, so the caller transparently recomputes and repairs
that entry.  An optional LRU cap bounds the cache by entry count,
evicting the least-recently-*used* blobs (hits refresh an entry's
mtime).

Hit/miss/bypass/corruption traffic is published through
``repro.telemetry`` counters (``cache.hits`` etc.) so a campaign's
telemetry snapshot shows exactly how much simulation work the cache
absorbed.  When a :class:`repro.obs.journal.EventJournal` is attached,
the same traffic is journaled as ``cache.*`` events correlated by task
fingerprint (bypasses journal the *reason* the fingerprint was
unavailable, at warning level).
"""

import hashlib
import json
import os
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.metrics import RunResult
from repro.core.strategies import AttackStrategy
from repro.injection.engine import SimulationConfig
from repro.resilience.checkpoint import atomic_write_bytes
from repro.service.fingerprint import (
    FingerprintUnavailable,
    default_code_epoch,
    fingerprint_task,
)
from repro.telemetry import Telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.obs.journal import BoundJournal, EventJournal

#: Cache blob envelope version (bumped on incompatible changes).
RUN_CACHE_VERSION = 1

#: One executable simulation task, as used by the executor layer.
SimulationTask = Tuple[SimulationConfig, Optional[AttackStrategy]]


@dataclass
class CacheStats:
    """Counters for one :class:`RunCache` handle (process-local)."""

    hits: int = 0
    misses: int = 0
    bypasses: int = 0
    corruptions: int = 0
    writes: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.bypasses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "bypasses": self.bypasses,
            "corruptions": self.corruptions,
            "writes": self.writes,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class RunCache:
    """Content-addressed persistent store of completed simulation runs.

    Args:
        root: Cache directory (created on first write).
        max_entries: Optional LRU cap — after a write pushes the entry
            count above this, least-recently-used blobs are evicted
            until back at the cap.
        telemetry: Optional telemetry sink for ``cache.*`` counters.
        code_epoch: Cache-namespace token; defaults to the checkout's
            :func:`~repro.service.fingerprint.default_code_epoch`, so a
            kernel change (regenerated goldens) invalidates every entry.
        journal: Optional event journal; when given, every hit, miss,
            bypass, write, corruption quarantine and eviction emits a
            ``cache.*`` event correlated by fingerprint.
    """

    def __init__(
        self,
        root: str,
        max_entries: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
        code_epoch: Optional[str] = None,
        journal: "Optional[EventJournal | BoundJournal]" = None,
    ):
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.root = root
        self.max_entries = max_entries
        self.telemetry = telemetry
        self.code_epoch = code_epoch if code_epoch is not None else default_code_epoch()
        self.journal = journal
        self.stats = CacheStats()

    # -- keys ----------------------------------------------------------------

    def fingerprint(self, config: SimulationConfig, strategy: Optional[AttackStrategy]) -> Optional[str]:
        """The cache key for one task, or ``None`` when it must bypass.

        Unknown strategy classes (or non-canonicalizable configs) cannot
        be safely addressed, so they are counted as bypasses and the
        caller runs them uncached.
        """
        try:
            return fingerprint_task(config, strategy, code_epoch=self.code_epoch)
        except FingerprintUnavailable as error:
            self.stats.bypasses += 1
            self._count("cache.bypasses")
            self._count("cache.bypass.fingerprint_unavailable")
            self._emit("cache.bypass", level="warning", reason=str(error))
            return None

    def _blob_path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key[2:4], f"{key}.json.z")

    # -- lookup --------------------------------------------------------------

    def get(self, key: str) -> Optional[RunResult]:
        """The cached result for ``key``, or ``None`` on miss.

        A corrupt blob (bad envelope, integrity-hash mismatch,
        undecodable payload) is quarantined — deleted and counted — and
        reported as a miss so the caller recomputes and repairs it.
        A hit refreshes the blob's mtime (the LRU clock).
        """
        path = self._blob_path(key)
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError:
            self.stats.misses += 1
            self._count("cache.misses")
            self._emit("cache.miss", fingerprint=key)
            return None
        result = self._decode(key, raw)
        if result is None:
            self._quarantine(path, key)
            self.stats.misses += 1
            self._count("cache.misses")
            self._emit("cache.miss", fingerprint=key)
            return None
        try:
            os.utime(path)
        except OSError:
            pass
        self.stats.hits += 1
        self._count("cache.hits")
        self._emit("cache.hit", fingerprint=key)
        return result

    def _decode(self, key: str, raw: bytes) -> Optional[RunResult]:
        try:
            envelope = json.loads(raw.decode())
            if envelope.get("version") != RUN_CACHE_VERSION:
                return None
            if envelope.get("fingerprint") != key:
                return None
            payload = bytes.fromhex(envelope["payload"])
            if hashlib.sha256(payload).hexdigest() != envelope["sha256"]:
                return None
            record = json.loads(zlib.decompress(payload).decode())
            return RunResult.from_dict(record)
        except (ValueError, KeyError, TypeError, zlib.error):
            return None

    def _quarantine(self, path: str, key: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass
        self.stats.corruptions += 1
        self._count("cache.corruptions")
        self._emit("cache.corruption", level="warning", fingerprint=key, path=path)

    # -- store ---------------------------------------------------------------

    def put(self, key: str, result: RunResult) -> None:
        """Store one completed run under its fingerprint (atomic, durable)."""
        payload = zlib.compress(
            json.dumps(result.to_dict(), sort_keys=True, separators=(",", ":")).encode()
        )
        envelope = {
            "version": RUN_CACHE_VERSION,
            "fingerprint": key,
            "sha256": hashlib.sha256(payload).hexdigest(),
            "payload": payload.hex(),
        }
        path = self._blob_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        atomic_write_bytes(path, json.dumps(envelope, sort_keys=True).encode())
        self.stats.writes += 1
        self._count("cache.writes")
        self._emit("cache.write", fingerprint=key)
        if self.max_entries is not None:
            self._evict_to_cap()

    # -- maintenance ---------------------------------------------------------

    def _entries(self) -> List[Tuple[float, str]]:
        """Every blob as ``(mtime, path)`` (unsorted)."""
        entries: List[Tuple[float, str]] = []
        for directory, _, names in os.walk(self.root):
            for name in names:
                if not name.endswith(".json.z"):
                    continue
                path = os.path.join(directory, name)
                try:
                    entries.append((os.stat(path).st_mtime, path))
                except OSError:
                    continue
        return entries

    def _evict_to_cap(self) -> None:
        assert self.max_entries is not None
        entries = self._entries()
        if len(entries) <= self.max_entries:
            return
        entries.sort()  # oldest mtime (least recently used) first
        for _, path in entries[: len(entries) - self.max_entries]:
            try:
                os.remove(path)
            except OSError:
                continue
            self.stats.evictions += 1
            self._count("cache.evictions")
            self._emit(
                "cache.evict",
                fingerprint=os.path.basename(path)[: -len(".json.z")],
            )

    def __len__(self) -> int:
        return len(self._entries())

    def keys(self) -> Iterator[str]:
        for _, path in self._entries():
            yield os.path.basename(path)[: -len(".json.z")]

    def _count(self, name: str) -> None:
        if self.telemetry is not None:
            self.telemetry.metrics.counter(name).inc()

    def _emit(self, kind: str, level: str = "info", **fields) -> None:
        if self.journal is not None:
            self.journal.emit(kind, level=level, **fields)


def partition_tasks(
    tasks: Sequence[SimulationTask], cache: RunCache
) -> Tuple[Dict[int, RunResult], List[int], List[Optional[str]]]:
    """Split a task list into cached results and still-pending work.

    Returns ``(cached, pending_indices, keys)`` where ``cached`` maps
    task index to its cache hit, ``pending_indices`` lists the tasks
    that must actually run (misses and bypasses), and ``keys`` holds
    each task's fingerprint (``None`` for bypasses) so fresh results can
    be stored after execution.
    """
    cached: Dict[int, RunResult] = {}
    pending: List[int] = []
    keys: List[Optional[str]] = []
    for index, (config, strategy) in enumerate(tasks):
        key = cache.fingerprint(config, strategy)
        keys.append(key)
        if key is not None:
            hit = cache.get(key)
            if hit is not None:
                cached[index] = hit
                continue
        pending.append(index)
    return cached, pending, keys


def run_tasks_cached(
    tasks: Sequence[SimulationTask],
    cache: RunCache,
    runner: Callable[[Sequence[SimulationTask]], Sequence[RunResult]],
    progress: Optional[Callable[[RunResult], None]] = None,
) -> List[RunResult]:
    """Run a task list through the cache, delegating misses to ``runner``.

    ``runner`` receives only the tasks the cache could not serve and
    must return their results in the same order; fresh results are
    stored back under their fingerprints.  The returned list is in
    original task order and bit-identical to an uncached run.  The
    optional ``progress`` callback fires once per task — for hits and
    fresh runs alike — in task order.
    """
    cached, pending, keys = partition_tasks(tasks, cache)
    fresh: Dict[int, RunResult] = {}
    if pending:
        computed = runner([tasks[index] for index in pending])
        if len(computed) != len(pending):
            raise RuntimeError(
                f"runner returned {len(computed)} results for {len(pending)} tasks"
            )
        for index, result in zip(pending, computed):
            fresh[index] = result
            key = keys[index]
            if key is not None:
                cache.put(key, result)
    results: List[RunResult] = []
    for index in range(len(tasks)):
        result = cached[index] if index in cached else fresh[index]
        results.append(result)
        if progress is not None:
            progress(result)
    return results

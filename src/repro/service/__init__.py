"""Campaign-as-a-service: run cache + async job front-end.

The platform's serving layer, turning the one-shot in-process campaign
loop into reusable infrastructure:

* :mod:`repro.service.fingerprint` — canonical content-addressed task
  fingerprints (resolved scenario + config + strategy identity + seed +
  a code-epoch token derived from the golden-fixture hash, so kernel
  changes invalidate cleanly);
* :mod:`repro.service.cache` — the persistent :class:`RunCache`
  (sharded JSON/zlib blobs, atomic durable writes, integrity-verified
  reads with corruption quarantine-and-recompute, LRU cap, telemetry
  counters), consulted by ``Campaign.run``/``run_resilient``,
  ``run_simulations``, the table/figure experiments and the search
  driver before any simulation is paid for;
* :mod:`repro.service.jobs` / :mod:`repro.service.service` — the
  asyncio :class:`CampaignService`: queued campaign/search jobs over
  the pool/batch back-end via ``run_in_executor``, streaming progress
  events and partial results per job.
"""

from repro.service.cache import CacheStats, RunCache, partition_tasks, run_tasks_cached
from repro.service.fingerprint import (
    CODE_EPOCH_ENV,
    FingerprintUnavailable,
    canonical_json,
    canonical_task,
    compute_code_epoch,
    default_code_epoch,
    fingerprint_task,
    register_strategy_fingerprint,
)
from repro.service.jobs import (
    CampaignJobSpec,
    Job,
    JobEvent,
    JobStatus,
    SearchJobSpec,
)
from repro.service.service import CampaignService

__all__ = [
    "CacheStats",
    "CampaignJobSpec",
    "CampaignService",
    "canonical_json",
    "canonical_task",
    "CODE_EPOCH_ENV",
    "compute_code_epoch",
    "default_code_epoch",
    "FingerprintUnavailable",
    "fingerprint_task",
    "Job",
    "JobEvent",
    "JobStatus",
    "partition_tasks",
    "register_strategy_fingerprint",
    "RunCache",
    "run_tasks_cached",
    "SearchJobSpec",
]

"""Job model of the campaign service.

A *job* is one queued unit of platform work — a whole campaign grid
(:class:`CampaignJobSpec`) or a budgeted attack search
(:class:`SearchJobSpec`).  The :class:`~repro.service.CampaignService`
accepts jobs, executes them against the pool/batch back-end behind the
shared run cache, and streams :class:`JobEvent` records per job while
partial results accumulate on the :class:`Job` handle.

Events carry a *globally* monotonic sequence number (one counter across
all jobs of a service), so the interleaving of concurrent jobs is
observable and testable: two jobs running together produce interleaved
sequence numbers, a serialized queue produces disjoint ranges.
"""

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

from repro.analysis.metrics import RunResult
from repro.injection.campaign import CampaignConfig, StrategyFactory
from repro.search.objectives import Objective
from repro.search.optimizers import Optimizer
from repro.search.space import SearchSpace

if TYPE_CHECKING:  # pragma: no cover - typing only
    import asyncio

    from repro.obs.recorder import FlightRecorderConfig
    from repro.resilience.supervisor import SupervisionPolicy
    from repro.search.driver import SearchConfig


class JobStatus(Enum):
    """Lifecycle of one queued job."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"


@dataclass(frozen=True)
class CampaignJobSpec:
    """One campaign grid to run as a service job.

    Attributes:
        config: The campaign grid.
        strategy_factory: Optional strategy factory (defaults to the
            config's ``strategy_name`` lookup, as in
            :class:`~repro.injection.campaign.Campaign`).
        workers: Process-pool width per executed chunk.
        batch_size: Lockstep batch width per worker.
        supervision: Optional fault-tolerance policy for each chunk.
        chunk_runs: Runs per service-level chunk (each chunk is one
            ``run_in_executor`` dispatch and one progress event); the
            service default splits a job into ~4 chunks.
        recorder: Optional flight-recorder configuration; every run of
            the job keeps a black-box ring of its last cycles and
            flushes it on hazard/collision/alert/failure (see
            :class:`repro.obs.recorder.FlightRecorderConfig`).
    """

    config: CampaignConfig
    strategy_factory: Optional[StrategyFactory] = None
    workers: Optional[int] = None
    batch_size: Optional[int] = None
    supervision: Optional["SupervisionPolicy"] = None
    chunk_runs: Optional[int] = None
    recorder: Optional["FlightRecorderConfig"] = None


@dataclass(frozen=True)
class SearchJobSpec:
    """One budgeted attack search to run as a service job.

    Attributes:
        space / objective / optimizer_factory / config: Exactly the
            :class:`~repro.search.driver.SearchDriver` constructor
            surface; the service adds the shared run cache and streams
            one progress event per completed generation.
    """

    space: SearchSpace
    objective: Objective
    optimizer_factory: Callable[[SearchSpace], Optimizer]
    config: "SearchConfig"


#: Event kinds, in lifecycle order.
EVENT_QUEUED = "queued"
EVENT_STARTED = "started"
EVENT_PROGRESS = "progress"
EVENT_COMPLETED = "completed"
EVENT_FAILED = "failed"

_event_sequence = itertools.count()


@dataclass(frozen=True)
class JobEvent:
    """One observable step of a job's execution.

    Attributes:
        job_id: The job this event belongs to.
        kind: One of the ``EVENT_*`` constants.
        seq: Globally monotonic sequence number (service-wide, so the
            interleaving of concurrent jobs is observable).
        payload: Kind-specific detail (e.g. ``completed``/``total`` run
            counts for campaign progress, ``evaluations``/``simulations``
            for search progress).
    """

    job_id: int
    kind: str
    seq: int
    payload: Dict[str, Any] = field(default_factory=dict)


def next_event_seq() -> int:
    """The next service-wide event sequence number."""
    return next(_event_sequence)


class Job:
    """Handle of one submitted job (created by the service, not directly).

    Attributes:
        id: Service-assigned job id (submission order).
        spec: The :class:`CampaignJobSpec` or :class:`SearchJobSpec`.
        status: Current :class:`JobStatus`.
        partial_results: Completed :class:`RunResult` records so far, in
            task order *per streamed chunk* (campaign jobs; grows as
            progress events are emitted).
        result: The finished payload — the full result list for campaign
            jobs, the :class:`~repro.search.driver.SearchResult` for
            search jobs — once ``status`` is ``COMPLETED``.
        error: The failure message once ``status`` is ``FAILED``.
    """

    def __init__(self, job_id: int, spec: Any, events: "asyncio.Queue[JobEvent]"):
        self.id = job_id
        self.spec = spec
        self.status = JobStatus.QUEUED
        self.events = events
        self.partial_results: List[RunResult] = []
        self.result: Any = None
        self.error: Optional[str] = None

    @property
    def total_runs(self) -> Optional[int]:
        """The job's total simulation count, when knowable up front."""
        if isinstance(self.spec, CampaignJobSpec):
            return self.spec.config.total_runs
        return None

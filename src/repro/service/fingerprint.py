"""Canonical content-addressed fingerprints for simulation tasks.

A *task* — one ``(SimulationConfig, AttackStrategy)`` pair — is a pure
function of its configuration and seed: every execution path in the repo
(sequential, pooled, lockstep-batched, supervised) produces bit-identical
:class:`~repro.analysis.metrics.RunResult` records for the same task.
That purity is what makes a shared run cache sound, and this module
defines the cache key: a SHA-256 digest over

* the **JSON-exact canonical serialization** of the task — the resolved
  :class:`~repro.sim.scenarios.Scenario` spec (so ``"S1"`` and the
  equivalent spec object hash identically), every remaining
  :class:`~repro.injection.engine.SimulationConfig` field, and the
  strategy's registered identity (class + constructor parameters); and
* a **code-epoch token** derived from the golden-fixture hash
  (``tests/golden/golden_runs.json``): any kernel change that alters
  simulation outputs regenerates the goldens, which rolls the epoch and
  cleanly invalidates every cached run.

Canonical serialization is deterministic and order-independent: nested
dataclasses serialize field-by-field with class identity, enums by value,
and the final JSON is dumped with sorted keys and exact ``repr`` float
round-tripping — two equal tasks always produce byte-identical canonical
JSON, regardless of how they were constructed.

Strategies must be *registered* (exact class match) to be fingerprintable
— an unregistered strategy class raises :class:`FingerprintUnavailable`
and the cache **bypasses** that task rather than risk serving a wrong
result for an unknown behavior.  The built-in Table III strategies are
registered here; custom strategies opt in via
:func:`register_strategy_fingerprint`.
"""

import hashlib
import json
import os
from dataclasses import fields, is_dataclass
from enum import Enum
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple, Type

from repro.core.strategies import (
    AttackStrategy,
    ContextAwareStrategy,
    NoAttackStrategy,
    RandomDurationStrategy,
    RandomStartDurationStrategy,
    RandomStartStrategy,
    ScheduledAttackStrategy,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.injection.engine import SimulationConfig

#: Task-fingerprint format version — part of every digest, bumped on
#: incompatible changes to the canonical serialization itself.
TASK_FINGERPRINT_VERSION = 1

#: Environment variable overriding the computed code epoch (useful for
#: pinning a cache namespace across checkouts, or in tests).
CODE_EPOCH_ENV = "REPRO_CODE_EPOCH"


class FingerprintUnavailable(ValueError):
    """The task cannot be canonically fingerprinted (cache must bypass)."""


# -- strategy identity --------------------------------------------------------

#: Exact strategy class -> constructor-equivalent attribute names.  Exact
#: (not MRO-based) lookup on purpose: a subclass can change behavior
#: without adding fields, so it must register its own identity.
_STRATEGY_FIELDS: Dict[Type[AttackStrategy], Tuple[str, ...]] = {}


def register_strategy_fingerprint(cls: Type[AttackStrategy], field_names: Tuple[str, ...]) -> None:
    """Declare a strategy class fingerprintable via the named attributes.

    The attributes must fully determine the strategy's behavior given the
    run seed (i.e. everything its constructor configures).  The class
    identity (module + qualname + ``name`` + corruption mode) is always
    part of the token, so two registered classes never collide even with
    identical field values.
    """
    _STRATEGY_FIELDS[cls] = tuple(field_names)


register_strategy_fingerprint(NoAttackStrategy, ())
register_strategy_fingerprint(RandomStartDurationStrategy, ("start_range", "duration_range"))
register_strategy_fingerprint(RandomStartStrategy, ("start_range", "duration_range"))
register_strategy_fingerprint(ScheduledAttackStrategy, ("start_range", "duration_range"))
register_strategy_fingerprint(RandomDurationStrategy, ("duration_range",))
register_strategy_fingerprint(ContextAwareStrategy, ("max_duration", "stop_on_hazard"))


def _strategy_token(config: "SimulationConfig", strategy: Optional[AttackStrategy]) -> dict:
    """The canonical identity of the strategy *as the simulation sees it*.

    When no attack engine is built (``attack_type`` is ``None``, or the
    strategy is absent / the no-attack baseline), only the strategy name
    reaches the result record, so only the name enters the token — an
    attack-free run hashes the same under any inert strategy object with
    the same name.
    """
    engine_active = (
        config.attack_type is not None
        and strategy is not None
        and not isinstance(strategy, NoAttackStrategy)
    )
    if not engine_active:
        name = strategy.name if strategy is not None else NoAttackStrategy.name
        return {"inert": True, "name": name}
    assert strategy is not None
    cls = type(strategy)
    try:
        field_names = _STRATEGY_FIELDS[cls]
    except KeyError:
        raise FingerprintUnavailable(
            f"strategy class {cls.__module__}.{cls.__qualname__} is not registered "
            "for fingerprinting (register_strategy_fingerprint opts it in)"
        ) from None
    token: Dict[str, Any] = {
        "class": f"{cls.__module__}.{cls.__qualname__}",
        "name": strategy.name,
        "corruption_mode": strategy.corruption_mode.value,
        "context_triggered": strategy.context_triggered,
    }
    for field_name in field_names:
        token[f"param.{field_name}"] = _canonical(getattr(strategy, field_name))
    return token


# -- canonical value encoding -------------------------------------------------


def _canonical(value: Any) -> Any:
    """Encode a config value into a deterministic JSON-safe structure."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # json.dumps serializes doubles at repr precision, which
        # round-trips exactly — equal floats, equal bytes.
        return value
    if isinstance(value, Enum):
        cls = type(value)
        return {"__enum__": f"{cls.__module__}.{cls.__qualname__}", "value": value.value}
    if is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        payload: Dict[str, Any] = {
            "__dataclass__": f"{cls.__module__}.{cls.__qualname__}"
        }
        for field in fields(value):
            payload[field.name] = _canonical(getattr(value, field.name))
        return payload
    if isinstance(value, (tuple, list)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        encoded = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise FingerprintUnavailable(
                    f"cannot canonicalize dict key {key!r} (only string keys)"
                )
            encoded[key] = _canonical(item)
        return encoded
    raise FingerprintUnavailable(
        f"cannot canonicalize {type(value).__module__}.{type(value).__qualname__} "
        "for fingerprinting"
    )


def canonical_task(
    config: "SimulationConfig", strategy: Optional[AttackStrategy] = None
) -> dict:
    """The canonical JSON-safe description of one simulation task.

    The scenario is *resolved* first (names looked up, initial-distance
    override applied), so a task given as ``scenario="S1"`` and the same
    task given the S1 spec object canonicalize identically.

    Raises :class:`FingerprintUnavailable` for tasks the canonical model
    cannot describe (unregistered strategy classes, non-JSON-safe config
    values) — callers treat those as cache bypasses.
    """
    scenario = config.build_scenario()
    return {
        "version": TASK_FINGERPRINT_VERSION,
        "scenario": _canonical(scenario),
        "seed": config.seed,
        "attack_type": None if config.attack_type is None else config.attack_type.value,
        "driver_enabled": config.driver_enabled,
        "max_steps": config.max_steps,
        "stop_after_collision": config.stop_after_collision,
        "noise": _canonical(config.noise),
        "record_trajectory": config.record_trajectory,
        "driver_reaction_time": config.driver_reaction_time,
        "hazard_params": _canonical(config.hazard_params),
        "attack_tuning": _canonical(config.attack_tuning),
        "track_safety_margin": config.track_safety_margin,
        "strategy": _strategy_token(config, strategy),
    }


def canonical_json(payload: dict) -> str:
    """Dump a canonical payload as byte-deterministic JSON."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


# -- the code epoch -----------------------------------------------------------

_default_epoch: Optional[str] = None


def _golden_fixture_path() -> Optional[str]:
    """Locate ``tests/golden/golden_runs.json`` relative to the checkout."""
    base = os.path.dirname(os.path.abspath(__file__))
    for _ in range(6):
        candidate = os.path.join(base, "tests", "golden", "golden_runs.json")
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(base)
        if parent == base:
            break
        base = parent
    return None


def compute_code_epoch() -> str:
    """Derive the code-epoch token for this checkout.

    Preference order: the :data:`CODE_EPOCH_ENV` environment variable
    (explicit namespace pinning), the SHA-256 of the golden fixture
    (rolls exactly when simulation outputs change), then the package
    version (installed deployments without the test tree — coarser, but
    still monotone across releases).
    """
    env = os.environ.get(CODE_EPOCH_ENV, "")
    if env:
        return f"env:{env}"
    path = _golden_fixture_path()
    if path is not None:
        digest = hashlib.sha256()
        with open(path, "rb") as handle:
            for block in iter(lambda: handle.read(1 << 20), b""):
                digest.update(block)
        return f"golden:{digest.hexdigest()}"
    from repro.version import __version__

    return f"version:{__version__}"


def default_code_epoch() -> str:
    """The process-wide cached code epoch (computed once, lazily)."""
    global _default_epoch
    if _default_epoch is None:
        _default_epoch = compute_code_epoch()
    return _default_epoch


# -- the fingerprint ----------------------------------------------------------


def fingerprint_task(
    config: "SimulationConfig",
    strategy: Optional[AttackStrategy] = None,
    code_epoch: Optional[str] = None,
) -> str:
    """The 64-hex-char content address of one simulation task.

    Equal tasks (same resolved scenario, config, strategy identity, seed)
    under the same code epoch always produce the same digest; any
    difference in any of those produces a different one.

    Raises :class:`FingerprintUnavailable` when the task cannot be
    canonically described (see :func:`canonical_task`).
    """
    epoch = code_epoch if code_epoch is not None else default_code_epoch()
    digest = hashlib.sha256()
    digest.update(epoch.encode())
    digest.update(b"\x00")
    digest.update(canonical_json(canonical_task(config, strategy)).encode())
    return digest.hexdigest()

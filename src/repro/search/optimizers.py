"""Seeded black-box optimizers over a :class:`~repro.search.space.SearchSpace`.

All optimizers speak one generation-oriented protocol: :meth:`ask`
proposes a batch of points, the driver evaluates the whole batch as one
dense lockstep batch through the kernel, and :meth:`tell` feeds the
scores back (higher is better).  Four implementations:

* :class:`GridSearch` — exhaustive product-grid enumeration in a fixed
  order; this *is* the Table IV-style sweep and serves as the baseline
  the adaptive optimizers are measured against.
* :class:`RandomSearch` — uniform seeded sampling (the paper's
  Random-ST+DUR analogue in search form).
* :class:`HillClimb` — coordinate hill-climbing with step decay and
  random restarts.
* :class:`CrossEntropy` — a small CEM: sample a Gaussian in unit space,
  refit it on the elite fraction each generation.

Determinism contract: an optimizer's proposals are a pure function of
``(space, seed, generation_size)`` and the sequence of ``tell`` calls —
never of wall-clock, evaluation order within a generation, or how the
driver executed the simulations.  The search driver relies on this for
checkpoint *resume by replay*: it rebuilds a fresh optimizer and replays
ask/tell against memoized scores, reproducing the interrupted run's
trajectory exactly.
"""

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.search.space import Point, SearchSpace


@dataclass(frozen=True)
class Told:
    """One evaluated proposal reported back to the optimizer."""

    point: Point
    score: float


class Optimizer:
    """Base class: seeded RNG plus the ask/tell protocol."""

    #: Registry name (also used in experiment rows and checkpoints).
    name: str = "abstract"

    def __init__(self, space: SearchSpace, seed: int = 0, generation_size: int = 8):
        if generation_size < 1:
            raise ValueError("generation_size must be >= 1")
        self.space = space
        self.seed = seed
        self.generation_size = generation_size
        self.rng = np.random.default_rng(np.random.SeedSequence([seed, space.ndim]))

    def ask(self) -> List[Point]:
        """Propose the next generation of points."""
        raise NotImplementedError

    def tell(self, told: Sequence[Told]) -> None:
        """Report the scores of (a subset of) the last generation."""
        raise NotImplementedError


class GridSearch(Optimizer):
    """Exhaustive enumeration of the space's product grid.

    The non-adaptive baseline: proposals are consecutive chunks of
    :meth:`SearchSpace.grid`, independent of every ``tell``.
    """

    name = "grid"

    def __init__(
        self,
        space: SearchSpace,
        seed: int = 0,
        generation_size: int = 8,
        steps: int = 4,
    ):
        super().__init__(space, seed, generation_size)
        self.steps = steps
        self._grid: Iterator[Point] = space.grid(steps)

    def ask(self) -> List[Point]:
        generation = []
        for point in self._grid:
            generation.append(point)
            if len(generation) == self.generation_size:
                break
        return generation

    def tell(self, told: Sequence[Told]) -> None:
        pass


class RandomSearch(Optimizer):
    """Uniform seeded random sampling."""

    name = "random"

    def ask(self) -> List[Point]:
        return [self.space.random_point(self.rng) for _ in range(self.generation_size)]

    def tell(self, told: Sequence[Told]) -> None:
        pass


class HillClimb(Optimizer):
    """Coordinate hill-climb with step decay and random restarts.

    Each generation perturbs one coordinate of the current incumbent per
    proposal (plus an ``explore_fraction`` of uniform samples); when a
    generation brings no improvement the step halves, and after
    ``patience`` stale generations the climb restarts from fresh random
    points.  The globally best evaluation is tracked by the
    :class:`~repro.search.driver.SearchDriver`, not here — a restart
    deliberately abandons the incumbent.
    """

    name = "hill-climb"

    def __init__(
        self,
        space: SearchSpace,
        seed: int = 0,
        generation_size: int = 8,
        initial_step: float = 0.25,
        patience: int = 3,
        explore_fraction: float = 0.25,
    ):
        super().__init__(space, seed, generation_size)
        self.initial_step = initial_step
        self.patience = patience
        self.explore_fraction = explore_fraction
        self._step = initial_step
        self._stale = 0
        self._current: Optional[Told] = None

    def ask(self) -> List[Point]:
        rng = self.rng
        space = self.space
        if self._current is None:
            return [space.random_point(rng) for _ in range(self.generation_size)]
        generation: List[Point] = []
        for _ in range(self.generation_size):
            if rng.random() < self.explore_fraction:
                generation.append(space.random_point(rng))
                continue
            coordinates = list(self._current.point)
            axis = int(rng.integers(space.ndim))
            sign = 1.0 if rng.random() < 0.5 else -1.0
            magnitude = self._step * float(rng.uniform(0.25, 1.0))
            coordinates[axis] = min(1.0, max(0.0, coordinates[axis] + sign * magnitude))
            generation.append(space.quantize(coordinates))
        return generation

    def tell(self, told: Sequence[Told]) -> None:
        improved = False
        for item in told:
            if self._current is None or item.score > self._current.score:
                self._current = item
                improved = True
        if improved:
            self._stale = 0
            return
        self._stale += 1
        self._step = max(self._step * 0.5, 1.0 / self.space.resolution)
        if self._stale >= self.patience:
            # Restart the climb from scratch; ask() resamples uniformly.
            self._current = None
            self._step = self.initial_step
            self._stale = 0


class CrossEntropy(Optimizer):
    """Cross-entropy method: Gaussian proposal refit on the elites.

    The proposal distribution is an axis-aligned Gaussian on the unit
    cube (categoricals participate through their continuous relaxation —
    the decoder buckets the coordinate).  Each ``tell`` refits mean and
    std on the top ``elite_fraction`` of the generation, smoothed towards
    the previous parameters, with a std floor that keeps exploration
    alive.
    """

    name = "cem"

    def __init__(
        self,
        space: SearchSpace,
        seed: int = 0,
        generation_size: int = 8,
        elite_fraction: float = 0.25,
        smoothing: float = 0.7,
        std_floor: float = 0.03,
    ):
        super().__init__(space, seed, generation_size)
        if not 0.0 < elite_fraction <= 1.0:
            raise ValueError("elite_fraction must be in (0, 1]")
        self.elite_fraction = elite_fraction
        self.smoothing = smoothing
        self.std_floor = std_floor
        self._mean = np.full(space.ndim, 0.5)
        self._std = np.full(space.ndim, 0.3)

    def ask(self) -> List[Point]:
        samples = self.rng.normal(
            self._mean, self._std, size=(self.generation_size, self.space.ndim)
        )
        np.clip(samples, 0.0, 1.0, out=samples)
        return [self.space.quantize(row) for row in samples]

    def tell(self, told: Sequence[Told]) -> None:
        if not told:
            return
        elite_count = max(1, int(round(self.elite_fraction * len(told))))
        # Deterministic ranking: score descending, point tuple as the
        # tie-break so equal scores order identically everywhere.
        ranked = sorted(told, key=lambda item: (-item.score, item.point))
        elites = np.array([item.point for item in ranked[:elite_count]])
        new_mean = elites.mean(axis=0)
        new_std = elites.std(axis=0)
        smoothing = self.smoothing
        self._mean = smoothing * new_mean + (1.0 - smoothing) * self._mean
        self._std = np.maximum(
            smoothing * new_std + (1.0 - smoothing) * self._std, self.std_floor
        )


OptimizerFactory = Callable[[SearchSpace], Optimizer]

_OPTIMIZERS: Dict[str, type] = {
    GridSearch.name: GridSearch,
    RandomSearch.name: RandomSearch,
    HillClimb.name: HillClimb,
    CrossEntropy.name: CrossEntropy,
}


def optimizer_names() -> List[str]:
    """Registry names, adaptive optimizers first, baseline last."""
    return [RandomSearch.name, HillClimb.name, CrossEntropy.name, GridSearch.name]


def make_optimizer(
    name: str, space: SearchSpace, seed: int = 0, generation_size: int = 8, **kwargs
) -> Optimizer:
    """Construct an optimizer from its registry name."""
    try:
        cls = _OPTIMIZERS[name]
    except KeyError:
        known = ", ".join(sorted(_OPTIMIZERS))
        raise KeyError(f"unknown optimizer {name!r}; known optimizers: {known}") from None
    return cls(space, seed=seed, generation_size=generation_size, **kwargs)

"""The budgeted search driver: generations → dense lockstep batches.

:class:`SearchDriver` owns everything around the optimizer loop:

* **generation evaluation** — every generation's unevaluated points are
  expanded into ``repetitions`` simulation tasks each and executed as
  *one* dense batch through :func:`repro.kernel.batch.run_batched`
  (``batch_size``), through the process pool
  (:func:`repro.injection.executor.run_simulations`, ``workers``), or
  sequentially — all three bit-identical, so the search trajectory is a
  pure function of ``(space, objective, optimizer, master_seed,
  budget)``;
* **memoization** — re-proposed points are scored from the memo instead
  of re-simulated (optimizers converge onto their incumbents, so this
  saves real simulations), while the optimizer still receives the score;
* **budget** — the driver stops after ``budget`` *unique* points have
  been evaluated; a truncated final generation evaluates only its first
  points up to the budget;
* **audit trail** — every generation's proposals, scores and memo hits
  are recorded (:class:`GenerationRecord`), and every unique evaluation
  keeps its per-repetition seeds and outcomes (:class:`Evaluation`);
* **checkpoint / resume** — the audit state serializes to JSON after
  every generation; :meth:`SearchDriver.run` with ``resume_from``
  reloads the scores and *replays* the optimizer against them, so a
  resumed search reproduces the uninterrupted run exactly while
  re-simulating nothing that was already paid for.

Per-point seeds derive from ``SeedSequence([master_seed, *grid
coordinates, repetition])`` — evaluation order never enters, which is
what makes sequential, pooled and batched evaluation agree.
"""

import json
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.analysis.metrics import RunResult
from repro.injection.engine import run_simulation
from repro.resilience.checkpoint import atomic_write_json
from repro.search.objectives import Objective
from repro.telemetry import Telemetry
from repro.search.optimizers import Optimizer, Told
from repro.search.space import (
    Point,
    PointKey,
    SearchSpace,
    SearchTask,
    with_safety_margin,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.obs.journal import BoundJournal, EventJournal
    from repro.service.cache import RunCache

#: JSON checkpoint format version (bumped on incompatible changes).
CHECKPOINT_VERSION = 1


def point_seed(master_seed: int, key: PointKey, repetition: int) -> int:
    """The deterministic simulation seed of ``(point, repetition)``."""
    sequence = np.random.SeedSequence([master_seed, *key, repetition])
    return int(sequence.generate_state(1)[0] % (2**31))


@dataclass
class RepetitionOutcome:
    """What one repetition of one point produced (the audit record)."""

    seed: int
    score: float
    hazard: bool
    accident: bool
    hazard_without_alert: bool
    time_to_hazard: Optional[float]
    min_ttc: Optional[float]

    @classmethod
    def from_result(cls, seed: int, score: float, result: RunResult) -> "RepetitionOutcome":
        return cls(
            seed=seed,
            score=score,
            hazard=result.hazard_occurred,
            accident=result.accident_occurred,
            hazard_without_alert=result.hazard_without_alert,
            time_to_hazard=result.time_to_hazard,
            min_ttc=result.min_ttc,
        )

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "score": self.score,
            "hazard": self.hazard,
            "accident": self.accident,
            "hazard_without_alert": self.hazard_without_alert,
            "time_to_hazard": self.time_to_hazard,
            "min_ttc": self.min_ttc,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RepetitionOutcome":
        return cls(**payload)


@dataclass
class Evaluation:
    """One unique point's evaluation (``repetitions`` simulations)."""

    index: int                  # evaluation order, 0-based
    generation: int             # generation that first proposed the point
    point: Point
    score: float
    repetitions: List[RepetitionOutcome]

    @property
    def hazard_found(self) -> bool:
        return any(outcome.hazard for outcome in self.repetitions)


@dataclass
class GenerationRecord:
    """The audit record of one optimizer generation."""

    generation: int
    points: List[Point]
    scores: List[float]
    memo_hits: List[bool]       # True where the score came from the memo


@dataclass(frozen=True)
class SearchConfig:
    """Configuration of one search run.

    Attributes:
        budget: Maximum number of *unique* points to simulate.
        repetitions: Simulations per point (each with its own derived
            seed); the objective aggregates over them.
        master_seed: Root of every derived seed.
        batch_size: Lockstep batch width for generation evaluation
            (> 1 routes each generation through
            :func:`repro.kernel.batch.run_batched`).
        workers: Process-pool width (> 1 routes through
            :func:`repro.injection.executor.run_simulations`; tasks are
            pickled, so decoded strategies must be picklable — the
            built-in ones are).
        stop_on_hazard: Stop as soon as an evaluation finds a hazard
            (used by evaluations-to-first-hazard comparisons and the CI
            smoke search).
        checkpoint_path: Write the JSON search state here after every
            generation (atomic rename); ``None`` disables.
        max_stalled_generations: Give up after this many consecutive
            generations that proposed nothing new (a fully converged
            optimizer re-asking its incumbent must not loop forever).
    """

    budget: int = 64
    repetitions: int = 1
    master_seed: int = 2022
    batch_size: Optional[int] = None
    workers: Optional[int] = None
    stop_on_hazard: bool = False
    checkpoint_path: Optional[str] = None
    max_stalled_generations: int = 32

    def __post_init__(self):
        if self.budget < 1:
            raise ValueError("budget must be >= 1")
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")


@dataclass
class SearchResult:
    """Everything a finished (or budget-exhausted) search produced."""

    space_name: str
    objective_name: str
    optimizer_name: str
    config: SearchConfig
    best: Optional[Evaluation]
    evaluations: List[Evaluation] = field(default_factory=list)
    trail: List[GenerationRecord] = field(default_factory=list)
    simulations_run: int = 0    # actual simulator runs this process paid for

    @property
    def evaluations_used(self) -> int:
        return len(self.evaluations)

    @property
    def first_hazard_evaluation(self) -> Optional[int]:
        """1-based count of evaluations until the first hazard (None if never)."""
        for evaluation in self.evaluations:
            if evaluation.hazard_found:
                return evaluation.index + 1
        return None


class SearchDriver:
    """Runs one optimizer against one space under one objective."""

    def __init__(
        self,
        space: SearchSpace,
        objective: Objective,
        optimizer_factory: Callable[[SearchSpace], Optimizer],
        config: SearchConfig = SearchConfig(),
        telemetry: Optional[Telemetry] = None,
        run_cache: Optional["RunCache"] = None,
        on_generation: Optional[Callable[[SearchResult], None]] = None,
        journal: "Optional[EventJournal | BoundJournal]" = None,
    ):
        self.space = space
        self.objective = objective
        self.optimizer_factory = optimizer_factory
        self.config = config
        # Optional observation: search.* counters (evaluations,
        # simulations, memo hits, generations) are pure functions of the
        # deterministic search trajectory, so they agree across the three
        # execution modes; rates land under perf.*.
        self.telemetry = telemetry
        # Optional shared run cache (repro.service.RunCache): every
        # repetition the cache already holds is served without
        # simulating, and simulations_run counts only what was paid —
        # the search trajectory itself is unchanged (bit-identical
        # results either way).
        self.run_cache = run_cache
        # Optional per-generation observer (the campaign service streams
        # progress events from it); called with the partial SearchResult
        # after every completed generation.
        self.on_generation = on_generation
        # Optional event journal: one "search.generation" record per
        # completed generation (fresh points, memo hits, budget spent),
        # correlated with whatever fields the caller bound (job_id).
        self.journal = journal

    # -- checkpointing -------------------------------------------------------

    def _checkpoint_payload(self, result: SearchResult) -> dict:
        return {
            "version": CHECKPOINT_VERSION,
            "space": self.space.fingerprint(),
            "objective": self.objective.name,
            "optimizer": result.optimizer_name,
            "master_seed": self.config.master_seed,
            "repetitions": self.config.repetitions,
            "evaluations": [
                {
                    "key": list(self.space.key(evaluation.point)),
                    "score": evaluation.score,
                    "repetitions": [r.to_dict() for r in evaluation.repetitions],
                }
                for evaluation in result.evaluations
            ],
        }

    def _write_checkpoint(self, result: SearchResult) -> None:
        path = self.config.checkpoint_path
        if path is None:
            return
        # Same crash-safe write-rename idiom as the campaign checkpoints
        # (repro.resilience.checkpoint): a kill at any instant leaves the
        # previous checkpoint loadable.
        atomic_write_json(path, self._checkpoint_payload(result))

    def _load_checkpoint(
        self, source: Union[str, dict]
    ) -> Dict[PointKey, Tuple[float, List[RepetitionOutcome]]]:
        if isinstance(source, str):
            with open(source) as handle:
                payload = json.load(handle)
        else:
            payload = source
        if payload.get("version") != CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint version {payload.get('version')!r} does not match "
                f"{CHECKPOINT_VERSION}"
            )
        for attribute, expected in (
            ("space", self.space.fingerprint()),
            ("objective", self.objective.name),
            ("master_seed", self.config.master_seed),
            ("repetitions", self.config.repetitions),
        ):
            if payload.get(attribute) != expected:
                raise ValueError(
                    f"checkpoint {attribute} {payload.get(attribute)!r} does not "
                    f"match the driver's {expected!r}"
                )
        cache: Dict[PointKey, Tuple[float, List[RepetitionOutcome]]] = {}
        for entry in payload["evaluations"]:
            key = tuple(int(k) for k in entry["key"])
            outcomes = [RepetitionOutcome.from_dict(r) for r in entry["repetitions"]]
            cache[key] = (float(entry["score"]), outcomes)
        return cache

    # -- evaluation ----------------------------------------------------------

    def _build_tasks(self, point: Point) -> Tuple[List[SearchTask], List[int]]:
        """Fresh tasks (and their seeds) for every repetition of a point."""
        key = self.space.key(point)
        tasks: List[SearchTask] = []
        seeds: List[int] = []
        for repetition in range(self.config.repetitions):
            seed = point_seed(self.config.master_seed, key, repetition)
            task = self.space.decode(point, seed)
            if self.objective.requires_margin:
                task = with_safety_margin(task)
            tasks.append(task)
            seeds.append(seed)
        return tasks, seeds

    def _execute(self, tasks: Sequence[SearchTask]) -> List[RunResult]:
        """Run tasks batched / pooled / sequentially (identical results).

        With a ``run_cache``, cached repetitions are served directly and
        only the misses reach the execution back-end.
        """
        if self.run_cache is not None:
            from repro.service.cache import run_tasks_cached

            return run_tasks_cached(tasks, self.run_cache, self._execute_uncached)
        return self._execute_uncached(tasks)

    def _execute_uncached(self, tasks: Sequence[SearchTask]) -> List[RunResult]:
        config = self.config
        telemetry = self.telemetry
        if config.workers is not None and config.workers > 1 and len(tasks) > 1:
            from repro.injection.executor import run_simulations

            return run_simulations(
                tasks,
                workers=config.workers,
                batch_size=config.batch_size,
                telemetry=telemetry,
            )
        if config.batch_size is not None and config.batch_size > 1 and len(tasks) > 1:
            from repro.kernel.batch import run_batched

            return run_batched(tasks, batch_size=config.batch_size, telemetry=telemetry)
        return [
            run_simulation(task_config, strategy, telemetry=telemetry)
            for task_config, strategy in tasks
        ]

    # -- the search loop -----------------------------------------------------

    def run(self, resume_from: Optional[Union[str, dict]] = None) -> SearchResult:
        """Run the search to budget exhaustion (or convergence/stop).

        Args:
            resume_from: A checkpoint path (or already-loaded payload)
                from a previous run with the same space, objective, seed
                and repetitions.  Scores found there are reused without
                simulation while the optimizer replays through them, so
                the resumed trajectory is identical to the uninterrupted
                one.
        """
        config = self.config
        telemetry = self.telemetry
        search_start_ns = telemetry.now_ns() if telemetry is not None else 0
        optimizer = self.optimizer_factory(self.space)
        result = SearchResult(
            space_name=self.space.name,
            objective_name=self.objective.name,
            optimizer_name=optimizer.name,
            config=config,
            best=None,
        )
        cache: Dict[PointKey, Tuple[float, List[RepetitionOutcome]]] = {}
        if resume_from is not None:
            cache = self._load_checkpoint(resume_from)
        memo: Dict[PointKey, Evaluation] = {}

        generation_index = 0
        stalled = 0
        stop = False
        while not stop and len(memo) < config.budget:
            generation_start_ns = telemetry.now_ns() if telemetry is not None else 0
            generation = optimizer.ask()
            if not generation:
                break  # the grid baseline is exhausted

            # Unique unevaluated points of this generation, in proposal
            # order, truncated to the remaining budget.
            fresh: List[Point] = []
            seen: set = set()
            remaining = config.budget - len(memo)
            for point in generation:
                key = self.space.key(point)
                if key in memo or key in seen:
                    continue
                if len(fresh) == remaining:
                    break
                seen.add(key)
                fresh.append(point)
            stalled = 0 if fresh else stalled + 1
            if stalled > config.max_stalled_generations:
                break

            # Simulate what the cache cannot answer, as one dense batch.
            to_simulate = [
                point for point in fresh if self.space.key(point) not in cache
            ]
            tasks: List[SearchTask] = []
            seeds_by_point: List[List[int]] = []
            for point in to_simulate:
                point_tasks, seeds = self._build_tasks(point)
                tasks.extend(point_tasks)
                seeds_by_point.append(seeds)
            if tasks and self.run_cache is not None:
                stats = self.run_cache.stats
                paid_before = stats.misses + stats.bypasses
                outputs = self._execute(tasks)
                # Misses and bypasses are the tasks that actually hit the
                # simulator; hits cost nothing.
                paid = (stats.misses + stats.bypasses) - paid_before
            else:
                outputs = self._execute(tasks) if tasks else []
                paid = len(tasks)
            result.simulations_run += paid
            reps = config.repetitions
            simulated: Dict[PointKey, Tuple[float, List[RepetitionOutcome]]] = {}
            for position, point in enumerate(to_simulate):
                runs = outputs[position * reps:(position + 1) * reps]
                score = self.objective(runs)
                outcomes = [
                    RepetitionOutcome.from_result(
                        seeds_by_point[position][rep],
                        self.objective.score_run(runs[rep]),
                        runs[rep],
                    )
                    for rep in range(reps)
                ]
                simulated[self.space.key(point)] = (score, outcomes)

            # Account every fresh point (simulated or cache-served) as an
            # evaluation, in proposal order.
            for point in fresh:
                key = self.space.key(point)
                score, outcomes = simulated.get(key) or cache[key]
                evaluation = Evaluation(
                    index=len(result.evaluations),
                    generation=generation_index,
                    point=point,
                    score=score,
                    repetitions=outcomes,
                )
                memo[key] = evaluation
                result.evaluations.append(evaluation)
                if result.best is None or evaluation.score > result.best.score:
                    result.best = evaluation
                if config.stop_on_hazard and evaluation.hazard_found:
                    stop = True

            # Tell the optimizer every proposal the memo can score (the
            # whole generation except budget-truncated leftovers).
            told: List[Told] = []
            memo_hits: List[bool] = []
            scores: List[float] = []
            fresh_keys = {self.space.key(point) for point in fresh}
            consumed: set = set()
            for point in generation:
                key = self.space.key(point)
                evaluation = memo.get(key)
                if evaluation is None:
                    continue  # truncated by the budget; never scored
                told.append(Told(point=point, score=evaluation.score))
                # A proposal is "fresh" only at its first occurrence in
                # this generation; repeats are memo hits.
                first_occurrence = key in fresh_keys and key not in consumed
                consumed.add(key)
                memo_hits.append(not first_occurrence)
                scores.append(evaluation.score)
            optimizer.tell(told)
            result.trail.append(
                GenerationRecord(
                    generation=generation_index,
                    points=[item.point for item in told],
                    scores=scores,
                    memo_hits=memo_hits,
                )
            )
            if telemetry is not None:
                metrics = telemetry.metrics
                metrics.counter("search.generations").inc()
                metrics.counter("search.evaluations").inc(len(fresh))
                metrics.counter("search.simulations").inc(paid)
                metrics.counter("search.memo_hits").inc(sum(memo_hits))
                if telemetry.tracer is not None:
                    telemetry.tracer.add_complete(
                        "search.generation",
                        generation_start_ns,
                        telemetry.now_ns() - generation_start_ns,
                        category="search",
                        args={
                            "generation": generation_index,
                            "fresh": len(fresh),
                            "memo_hits": sum(memo_hits),
                        },
                    )
            if self.journal is not None:
                self.journal.emit(
                    "search.generation",
                    generation=generation_index,
                    fresh=len(fresh),
                    memo_hits=sum(memo_hits),
                    evaluations=len(result.evaluations),
                    simulations=result.simulations_run,
                    best_score=result.best.score if result.best is not None else None,
                )
            generation_index += 1
            self._write_checkpoint(result)
            if self.on_generation is not None:
                self.on_generation(result)

        if telemetry is not None:
            metrics = telemetry.metrics
            if result.best is not None:
                metrics.gauge("search.best_score").set(result.best.score)
                # Evaluations spent after the incumbent was found — how
                # far the search has stalled (0 = still improving).
                metrics.gauge("search.evals_since_improvement").set(
                    float(len(result.evaluations) - (result.best.index + 1))
                )
            wall_s = (telemetry.now_ns() - search_start_ns) / 1e9
            if wall_s > 0.0 and result.evaluations:
                metrics.gauge("perf.search.evals_per_s").set(
                    len(result.evaluations) / wall_s
                )
            if telemetry.tracer is not None:
                telemetry.tracer.add_complete(
                    "search",
                    search_start_ns,
                    telemetry.now_ns() - search_start_ns,
                    category="search",
                    args={
                        "optimizer": result.optimizer_name,
                        "evaluations": len(result.evaluations),
                        "simulations": result.simulations_run,
                    },
                )
        return result


def audit_summary(result: SearchResult) -> Dict[str, Any]:
    """A compact JSON-safe summary of a finished search."""
    return {
        "space": result.space_name,
        "objective": result.objective_name,
        "optimizer": result.optimizer_name,
        "budget": result.config.budget,
        "evaluations_used": result.evaluations_used,
        "simulations_run": result.simulations_run,
        "generations": len(result.trail),
        "first_hazard_evaluation": result.first_hazard_evaluation,
        "best_score": None if result.best is None else result.best.score,
        "best_point": None if result.best is None else list(result.best.point),
    }

"""Search objectives computed from :class:`~repro.analysis.metrics.RunResult`.

An objective maps the run results of one search point (one result per
repetition) to a single scalar score — **higher is better**.  All
objectives share a two-tier shape:

* runs that reached a hazard score ``>= 1.0``, increasing as the hazard
  arrives *faster* after activation (small Time-To-Hazard leaves the
  driver less budget to react — the paper's key metric);
* hazard-free runs score in ``[0, 1)`` from the safety margin the run
  came down to (minimum lead TTC, recorded when the simulation runs with
  ``track_safety_margin=True`` — the scalar twin of
  :class:`~repro.kernel.batch.BatchKinematics`' vectorised TTC), so the
  optimizers get a gradient towards the hazard boundary before they have
  found any hazard at all.

Multi-repetition aggregation is the mean of the per-run scores; the
driver derives one deterministic seed per ``(point, repetition)`` pair,
so an objective value is a pure function of the point.
"""

import math
from typing import Optional, Sequence

from repro.analysis.metrics import RunResult


#: Characteristic scales normalising the three margin axes: a lead TTC
#: of 5 s, an ego speed of 5 m/s and a lane margin of 0.5 m each count
#: as "one unit away" from their hazard boundary.
TTC_SCALE = 5.0
SPEED_SCALE = 5.0
LANE_SCALE = 0.5


def margin_score(result: RunResult) -> float:
    """Hazard-free shaping term in ``[0, 1)`` from the recorded margins.

    Each hazard axis has its own margin (minimum lead TTC for H1,
    minimum ego speed for H2, minimum distance to the nearer lane line
    for H3); each contributes a proximity ``1 / (1 + m)`` over its
    normalised margin ``m``, and the score is the *mean* across the
    recorded axes.  The mean (rather than the minimum margin) matters
    for optimisation: axes the attack does not move contribute a
    constant, so approaching *any* hazard boundary strictly increases
    the score — there is no plateau where a constant axis masks the
    moving one.  Returns 0.0 when the run recorded no margins (margin
    tracking disabled).
    """
    proximities = []
    if result.min_ttc is not None and math.isfinite(result.min_ttc):
        proximities.append(1.0 / (1.0 + max(result.min_ttc, 0.0) / TTC_SCALE))
    if result.min_ego_speed is not None:
        proximities.append(1.0 / (1.0 + max(result.min_ego_speed, 0.0) / SPEED_SCALE))
    if result.min_lane_margin is not None:
        proximities.append(1.0 / (1.0 + max(result.min_lane_margin, 0.0) / LANE_SCALE))
    if not proximities:
        return 0.0
    return sum(proximities) / len(proximities)


class Objective:
    """Base class: per-run scoring plus mean aggregation."""

    #: Identifies the objective in checkpoints and experiment rows.
    name: str = "abstract"
    #: Whether runs must be simulated with ``track_safety_margin=True``.
    requires_margin: bool = False

    def score_run(self, result: RunResult) -> float:
        raise NotImplementedError

    def __call__(self, results: Sequence[RunResult]) -> float:
        if not results:
            raise ValueError("objective needs at least one run result")
        return sum(self.score_run(result) for result in results) / len(results)


class HazardObjective(Objective):
    """Find *any* hazard, preferring fast ones; margin-shaped below.

    Per run: ``1 + 1/(1 + TTH)`` when a hazard occurred (TTH falls back
    to the first hazard time when the attack never activated), else the
    :func:`margin_score`.
    """

    name = "hazard"
    requires_margin = True

    def score_run(self, result: RunResult) -> float:
        if result.hazard_occurred:
            tth = result.time_to_hazard
            if tth is None:
                tth = result.first_hazard_time
            return 1.0 + 1.0 / (1.0 + max(tth or 0.0, 0.0))
        return margin_score(result)


class TimeToHazardObjective(Objective):
    """Minimise the Time-To-Hazard itself (the paper's TTH metric).

    Per run: ``1 + (horizon - TTH) / horizon`` when a hazard occurred
    with a measurable TTH (clamped at the horizon), ``1.0`` for hazards
    without one, else the margin shaping.  Distinguishes *how much*
    faster one hazardous point is than another, rather than merely that
    both are hazardous.
    """

    name = "time-to-hazard"
    requires_margin = True

    def __init__(self, horizon: float = 10.0):
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.horizon = horizon

    def score_run(self, result: RunResult) -> float:
        if not result.hazard_occurred:
            return margin_score(result)
        tth = result.time_to_hazard
        if tth is None:
            return 1.0
        return 1.0 + max(self.horizon - tth, 0.0) / self.horizon


class StealthObjective(Objective):
    """Prefer hazards the ADAS never alerted on (hazard-without-alert).

    Per run: a hazard with no alert in the whole run scores ``2 +
    1/(1 + TTH)``; an alerted hazard scores ``1``; hazard-free runs fall
    back to the margin shaping scaled by ``1/2`` (a near miss that also
    stayed quiet is not distinguishable from the result record, so the
    shaping is discounted rather than split).
    """

    name = "stealth"
    requires_margin = True

    def score_run(self, result: RunResult) -> float:
        if result.hazard_without_alert:
            tth = result.time_to_hazard
            if tth is None:
                tth = result.first_hazard_time
            return 2.0 + 1.0 / (1.0 + max(tth or 0.0, 0.0))
        if result.hazard_occurred:
            return 1.0
        return 0.5 * margin_score(result)


_OBJECTIVES = {
    HazardObjective.name: HazardObjective,
    TimeToHazardObjective.name: TimeToHazardObjective,
    StealthObjective.name: StealthObjective,
}


def objective_by_name(name: str) -> Objective:
    """Construct an objective from its registry name."""
    try:
        return _OBJECTIVES[name]()
    except KeyError:
        known = ", ".join(sorted(_OBJECTIVES))
        raise KeyError(f"unknown objective {name!r}; known objectives: {known}") from None


def first_hazard(results: Sequence[RunResult]) -> Optional[RunResult]:
    """The first repetition that reached a hazard, if any."""
    for result in results:
        if result.hazard_occurred:
            return result
    return None

"""Adaptive attack-strategy optimization: budgeted black-box search over
the batched simulation kernel.

The packages splits into four pieces:

* :mod:`repro.search.space` — declarative, quantized parameter spaces
  decoding to ``(SimulationConfig, AttackStrategy)`` tasks;
* :mod:`repro.search.objectives` — scalar objectives over
  :class:`~repro.analysis.metrics.RunResult` (hazards, TTH, stealth,
  min-TTC margin shaping);
* :mod:`repro.search.optimizers` — seeded generation-oriented
  optimizers (grid baseline, random, hill-climb, CEM);
* :mod:`repro.search.driver` — the budgeted driver: memoized,
  checkpointable, evaluating each generation as one dense lockstep
  batch through the kernel.
"""

from repro.search.driver import (
    Evaluation,
    GenerationRecord,
    RepetitionOutcome,
    SearchConfig,
    SearchDriver,
    SearchResult,
    audit_summary,
    point_seed,
)
from repro.search.objectives import (
    HazardObjective,
    Objective,
    StealthObjective,
    TimeToHazardObjective,
    margin_score,
    objective_by_name,
)
from repro.search.optimizers import (
    CrossEntropy,
    GridSearch,
    HillClimb,
    Optimizer,
    RandomSearch,
    Told,
    make_optimizer,
    optimizer_names,
)
from repro.search.space import (
    Categorical,
    Continuous,
    Point,
    PointKey,
    SearchSpace,
    attack_search_space,
    with_safety_margin,
)

__all__ = [
    "Categorical",
    "Continuous",
    "CrossEntropy",
    "Evaluation",
    "GenerationRecord",
    "GridSearch",
    "HazardObjective",
    "HillClimb",
    "Objective",
    "Optimizer",
    "Point",
    "PointKey",
    "RandomSearch",
    "RepetitionOutcome",
    "SearchConfig",
    "SearchDriver",
    "SearchResult",
    "SearchSpace",
    "StealthObjective",
    "TimeToHazardObjective",
    "Told",
    "attack_search_space",
    "audit_summary",
    "make_optimizer",
    "margin_score",
    "objective_by_name",
    "optimizer_names",
    "point_seed",
    "with_safety_margin",
]

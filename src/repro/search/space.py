"""Declarative search spaces over attack parameters.

A :class:`SearchSpace` is an ordered list of named dimensions plus a
*decoder* that turns one concrete point into the ``(SimulationConfig,
AttackStrategy)`` task the simulator runs.  Points live on the unit
hypercube, quantized to a fixed per-dimension grid, which buys three
properties the search driver depends on:

* **exact memoization** — two proposals that quantize to the same grid
  point are the same point, bit-for-bit, so the evaluation memo is a
  plain dict and never re-simulates a repeat;
* **seed stability** — the per-point simulation seeds are derived from
  the integer grid coordinates (:meth:`SearchSpace.key`), never from
  evaluation order, so sequential, process-pool and lockstep-batched
  evaluation of the same points use identical seeds;
* **JSON round-trips** — grid coordinates survive checkpoint files
  exactly.

:func:`attack_search_space` builds the canonical space of the paper's
attack knobs: attack type, activation schedule (or context-predicate
thresholds for the Context-Aware strategies), attack duration, corruption
magnitude via :class:`~repro.core.corruption.CorruptionLimits`, and —
when a :class:`~repro.scenarios.ScenarioFamily` is given — the scenario
parameters themselves.
"""

from dataclasses import dataclass, replace
from itertools import product
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.adas.limits import ISO_SAFETY_LIMITS, OPENPILOT_LIMITS, SafetyLimits
from repro.core.attack_engine import AttackTuning
from repro.core.attack_types import AttackType
from repro.core.corruption import CorruptionLimits
from repro.core.strategies import (
    AttackStrategy,
    ContextAwareStrategy,
    ScheduledAttackStrategy,
)
from repro.injection.engine import SimulationConfig
from repro.scenarios.sampler import ScenarioFamily
from repro.sim.scenarios import Scenario
from repro.sim.units import STEPS_PER_SIMULATION

#: A point: quantized unit-hypercube coordinates, one per dimension.
Point = Tuple[float, ...]

#: Integer grid coordinates of a point (exact, hashable, JSON-safe).
PointKey = Tuple[int, ...]

#: One unit of simulator work produced by decoding a point.
SearchTask = Tuple[SimulationConfig, Optional[AttackStrategy]]

#: A decoder maps (decoded parameter values, run seed) to a task.
Decoder = Callable[[Dict[str, Any], int], SearchTask]


@dataclass(frozen=True)
class Continuous:
    """A real-valued dimension, uniform over ``[low, high]``."""

    name: str
    low: float
    high: float

    def __post_init__(self):
        if not self.high > self.low:
            raise ValueError(f"dimension {self.name!r} requires high > low")

    def value(self, unit: float) -> float:
        return self.low + unit * (self.high - self.low)

    def unit(self, value: float) -> float:
        return (value - self.low) / (self.high - self.low)


@dataclass(frozen=True)
class Categorical:
    """A discrete dimension over an ordered tuple of choices."""

    name: str
    choices: Tuple[Any, ...]

    def __post_init__(self):
        if len(self.choices) < 2:
            raise ValueError(f"dimension {self.name!r} needs at least two choices")

    def value(self, unit: float) -> Any:
        index = min(int(unit * len(self.choices)), len(self.choices) - 1)
        return self.choices[index]

    def unit(self, value: Any) -> float:
        # Centre of the choice's bucket, so quantize -> value round-trips.
        return (self.choices.index(value) + 0.5) / len(self.choices)


Dimension = Union[Continuous, Categorical]


class SearchSpace:
    """An ordered, quantized parameter space with a task decoder.

    Args:
        dimensions: The ordered dimensions; point coordinate ``i``
            corresponds to ``dimensions[i]``.
        decoder: Maps ``(values dict, seed)`` to the simulation task.
            Every call must build **fresh** objects (in particular a fresh
            strategy instance): lockstep-batched evaluation keeps many
            decoded tasks live at once.
        name: Identifies the space in checkpoints (resume refuses to mix
            checkpoints across differently named spaces).
        resolution: Grid steps per unit interval; proposals are rounded
            to this grid before decoding, memoization or seeding.
    """

    def __init__(
        self,
        dimensions: Sequence[Dimension],
        decoder: Decoder,
        name: str = "search-space",
        resolution: int = 1024,
    ):
        if not dimensions:
            raise ValueError("a search space needs at least one dimension")
        names = [dimension.name for dimension in dimensions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate dimension names: {names}")
        if resolution < 2:
            raise ValueError("resolution must be >= 2")
        self.dimensions: Tuple[Dimension, ...] = tuple(dimensions)
        self.decoder = decoder
        self.name = name
        self.resolution = resolution

    @property
    def ndim(self) -> int:
        return len(self.dimensions)

    def fingerprint(self) -> Dict[str, Any]:
        """JSON-safe identity of the point→value mapping.

        Covers everything that determines how a grid key decodes into
        parameter values: the name, the resolution and every dimension's
        spec.  Checkpoint resume validates this, so a checkpoint cannot
        be replayed against a space whose identically named dimensions
        decode differently (the *decoder body* — e.g. a different
        ``max_steps`` baked into an otherwise equal space — is opaque
        and must be kept identical by the caller).
        """
        dimensions: List[List[Any]] = []
        for dimension in self.dimensions:
            if isinstance(dimension, Categorical):
                dimensions.append(
                    [dimension.name, [str(choice) for choice in dimension.choices]]
                )
            else:
                dimensions.append([dimension.name, dimension.low, dimension.high])
        return {
            "name": self.name,
            "resolution": self.resolution,
            "dimensions": dimensions,
        }

    # -- points -------------------------------------------------------------

    def quantize(self, coordinates: Sequence[float]) -> Point:
        """Snap raw unit coordinates onto the space's grid."""
        if len(coordinates) != self.ndim:
            raise ValueError(
                f"expected {self.ndim} coordinates, got {len(coordinates)}"
            )
        resolution = self.resolution
        return tuple(
            min(max(round(float(c) * resolution), 0), resolution) / resolution
            for c in coordinates
        )

    def key(self, point: Point) -> PointKey:
        """Exact integer grid coordinates (memo keys, seed material)."""
        resolution = self.resolution
        return tuple(round(c * resolution) for c in point)

    def from_key(self, key: Sequence[int]) -> Point:
        """Rebuild the point from :meth:`key` output (checkpoint loads)."""
        if len(key) != self.ndim:
            raise ValueError(f"expected {self.ndim} grid coordinates, got {len(key)}")
        return tuple(int(k) / self.resolution for k in key)

    def random_point(self, rng: np.random.Generator) -> Point:
        """One uniform point (quantized)."""
        return self.quantize(rng.random(self.ndim))

    # -- encode / decode ----------------------------------------------------

    def values(self, point: Point) -> Dict[str, Any]:
        """Decode a point into its named parameter values."""
        return {
            dimension.name: dimension.value(coordinate)
            for dimension, coordinate in zip(self.dimensions, point)
        }

    def point_from_values(self, values: Dict[str, Any]) -> Point:
        """Encode named parameter values back into a (quantized) point.

        The inverse of :meth:`values` up to grid quantization: decoding
        the returned point yields each continuous value rounded to the
        grid and each categorical value exactly.
        """
        missing = [d.name for d in self.dimensions if d.name not in values]
        if missing:
            raise KeyError(f"missing values for dimensions: {missing}")
        return self.quantize([d.unit(values[d.name]) for d in self.dimensions])

    def decode(self, point: Point, seed: int) -> SearchTask:
        """Build the ``(SimulationConfig, strategy)`` task for a point."""
        return self.decoder(self.values(point), seed)

    # -- exhaustive enumeration (the grid baseline) -------------------------

    def grid(self, steps: int) -> Iterator[Point]:
        """Yield the full product grid, ``steps`` levels per continuous
        dimension (categoricals enumerate every choice), in lexicographic
        dimension order — the exhaustive sweep a Table IV-style campaign
        performs, used as the baseline the optimizers must beat."""
        if steps < 2:
            raise ValueError("grid needs at least two steps per dimension")
        axes: List[List[float]] = []
        for dimension in self.dimensions:
            if isinstance(dimension, Categorical):
                n = len(dimension.choices)
                axes.append([(i + 0.5) / n for i in range(n)])
            else:
                axes.append([i / (steps - 1) for i in range(steps)])
        for coordinates in product(*axes):
            yield self.quantize(coordinates)

    def grid_size(self, steps: int) -> int:
        """Number of points :meth:`grid` yields for ``steps``."""
        size = 1
        for dimension in self.dimensions:
            size *= len(dimension.choices) if isinstance(dimension, Categorical) else steps
        return size


def _scaled_limits(base: SafetyLimits, magnitude: float) -> SafetyLimits:
    """Scale a limit set's injected magnitudes by ``magnitude``."""
    return SafetyLimits(
        accel_max=base.accel_max * magnitude,
        brake_min=base.brake_min * magnitude,
        steer_delta_max_deg=base.steer_delta_max_deg * magnitude,
        cruise_overspeed_factor=base.cruise_overspeed_factor,
    )


def attack_search_space(
    scenario: Union[str, Scenario] = "S1",
    attack_types: Sequence[AttackType] = (AttackType.DECELERATION,),
    context_aware: bool = False,
    family: Optional[ScenarioFamily] = None,
    start_range: Tuple[float, float] = (2.0, 40.0),
    duration_range: Tuple[float, float] = (0.5, 8.0),
    magnitude_range: Optional[Tuple[float, float]] = (0.4, 1.0),
    t_safe_range: Tuple[float, float] = (2.0, 3.0),
    driver_enabled: bool = True,
    max_steps: int = STEPS_PER_SIMULATION,
    resolution: int = 1024,
) -> SearchSpace:
    """The canonical attack-parameter search space.

    Dimensions (in order):

    * ``attack_type`` — categorical, only present when more than one
      attack type is given;
    * scheduled mode (default): ``start`` (activation time, s) and
      ``duration`` (s), decoded into a
      :class:`~repro.core.strategies.ScheduledAttackStrategy`;
    * context-aware mode (``context_aware=True``): ``t_safe``
      (context-table headway threshold, s) and ``duration`` (attack
      duration cap, s), decoded into a
      :class:`~repro.core.strategies.ContextAwareStrategy` plus an
      :class:`~repro.core.attack_engine.AttackTuning` carrying the
      threshold;
    * ``magnitude`` — scales both corruption limit sets between
      ``magnitude_range[0]`` and ``magnitude_range[1]`` times the
      OpenPilot / ISO maxima (omit by passing ``magnitude_range=None``);
    * ``scenario:<param>`` — one dimension per parameter of ``family``
      (sorted by name), decoded through the family's builder instead of
      the fixed ``scenario``.
    """
    attack_types = tuple(attack_types)
    if not attack_types:
        raise ValueError("attack_search_space needs at least one attack type")
    dimensions: List[Dimension] = []
    if len(attack_types) > 1:
        dimensions.append(Categorical("attack_type", attack_types))
    if context_aware:
        dimensions.append(Continuous("t_safe", *t_safe_range))
        dimensions.append(Continuous("duration", *duration_range))
    else:
        dimensions.append(Continuous("start", *start_range))
        dimensions.append(Continuous("duration", *duration_range))
    if magnitude_range is not None:
        dimensions.append(Continuous("magnitude", *magnitude_range))
    if family is not None:
        for key, bounds in sorted(family.parameters.items()):
            dimensions.append(Continuous(f"scenario:{key}", bounds.low, bounds.high))

    def decoder(values: Dict[str, Any], seed: int) -> SearchTask:
        attack_type = values.get("attack_type", attack_types[0])
        duration = values["duration"]
        strategy: AttackStrategy
        if context_aware:
            strategy = ContextAwareStrategy(max_duration=duration)
        else:
            strategy = ScheduledAttackStrategy(values["start"], duration)

        tuning: Optional[AttackTuning] = None
        magnitude = values.get("magnitude")
        t_safe = values.get("t_safe")
        if magnitude is not None or t_safe is not None:
            limits = CorruptionLimits()
            if magnitude is not None:
                limits = CorruptionLimits(
                    fixed=_scaled_limits(OPENPILOT_LIMITS, magnitude),
                    strategic=_scaled_limits(ISO_SAFETY_LIMITS, magnitude),
                )
            tuning = AttackTuning(corruption_limits=limits, t_safe=t_safe)

        run_scenario: Union[str, Scenario] = scenario
        if family is not None:
            params = {
                key[len("scenario:"):]: value
                for key, value in values.items()
                if key.startswith("scenario:")
            }
            run_scenario = family.build(f"{family.name}[search]", params)

        config = SimulationConfig(
            scenario=run_scenario,
            seed=seed,
            attack_type=attack_type,
            driver_enabled=driver_enabled,
            max_steps=max_steps,
            attack_tuning=tuning,
        )
        return config, strategy

    scenario_label = scenario if isinstance(scenario, str) else scenario.name
    if family is not None:
        scenario_label = f"{family.name}[*]"
    mode = "context-aware" if context_aware else "scheduled"
    # max_steps changes what a point *evaluates to* without changing any
    # dimension, so it is part of the space identity (checkpoint resume
    # validates the name through the fingerprint).
    return SearchSpace(
        dimensions,
        decoder,
        name=f"attack[{scenario_label}/{mode}/{max_steps}]",
        resolution=resolution,
    )


def with_safety_margin(task: SearchTask) -> SearchTask:
    """Copy of a task with min-TTC/min-gap margin tracking enabled."""
    config, strategy = task
    return replace(config, track_safety_margin=True), strategy

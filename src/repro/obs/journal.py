"""The causal event journal: append-only, durable, correlated JSONL.

One :class:`EventJournal` serves a whole service process.  Every emitter
— the campaign service (``job.*``), the supervisor (``supervisor.*``),
the run cache (``cache.*``), the search driver (``search.*``) and
checkpointing (``checkpoint.*``) — appends one compact JSON line per
event, stamped with a journal-wide strictly monotonic sequence number
and whatever correlation fields the emitter carries (``job_id`` →
``chunk_id`` → ``fingerprint`` → ``attempt``), so a post-mortem can walk
the exact causal chain of any run across layers.

Durability follows :mod:`repro.resilience.checkpoint`'s idioms: lines
are flushed + fsynced every ``fsync_every`` events, rotation is an
atomic ``os.replace`` to ``<path>.1`` followed by a directory fsync, and
the reader tolerates exactly one torn *final* line (the crash case) —
corruption anywhere else raises :class:`JournalError` loudly.

The journal doubles as the first half of job persistence
(ROADMAP item 2): :func:`replay_jobs` folds the ``job.*`` events back
into per-job state, so killing the service process mid-job and replaying
the journal reconstructs exactly what the dead process had observed.
"""

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.resilience.checkpoint import fsync_directory

#: Bumped when the line layout changes; readers check it per line.
JOURNAL_VERSION = 1


class JournalError(Exception):
    """Raised on mid-file journal corruption (torn tails are tolerated)."""


class EventJournal:
    """Append-only JSONL event log with monotonic sequence numbers.

    Args:
        path: The journal file (created on first emit; parent directory
            is created too).  Rotation moves the full file to
            ``<path>.1`` (one rotated generation is kept).
        fsync_every: fsync the file once per this many events (1 = every
            event, the crash-safe default; raise it to trade durability
            of the last few events for throughput).
        max_bytes: Rotate when the file reaches this size (``None``
            never rotates).

    Thread-safe: emitters on executor threads and the event loop share
    one lock, which is also what makes the sequence strictly monotonic
    service-wide.  The journal lives in the *parent* process only — it
    is never pickled to pool workers (worker-side facts reach it through
    the supervisor's parent-side accounting).
    """

    def __init__(
        self,
        path: str,
        fsync_every: int = 1,
        max_bytes: Optional[int] = None,
    ):
        if fsync_every < 1:
            raise ValueError(f"fsync_every must be positive, got {fsync_every}")
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.path = path
        self.fsync_every = fsync_every
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._file = None
        self._pending_sync = 0
        # Continue the sequence across process restarts: a reopened
        # journal appends after the last durable seq, so "strictly
        # monotonic" holds for the file's whole life, not one process's.
        self._seq = _last_seq(path) + 1

    # ------------------------------------------------------------------

    def emit(self, kind: str, level: str = "info", **fields: Any) -> int:
        """Append one event; returns its sequence number.

        ``None``-valued fields are dropped so emitters can pass optional
        correlation fields unconditionally.
        """
        record: Dict[str, Any] = {"v": JOURNAL_VERSION, "kind": kind, "level": level}
        for key, value in fields.items():
            if value is not None:
                record[key] = value
        with self._lock:
            seq = self._seq
            self._seq = seq + 1
            record["seq"] = seq
            record["ts"] = time.time()
            line = json.dumps(record, sort_keys=True, separators=(",", ":"))
            handle = self._ensure_open()
            handle.write(line + "\n")
            self._pending_sync += 1
            if self._pending_sync >= self.fsync_every:
                handle.flush()
                os.fsync(handle.fileno())
                self._pending_sync = 0
            if self.max_bytes is not None and handle.tell() >= self.max_bytes:
                self._rotate_locked()
        return seq

    def bind(self, **fields: Any) -> "BoundJournal":
        """A view that stamps ``fields`` onto every emitted event."""
        return BoundJournal(self, {k: v for k, v in fields.items() if v is not None})

    def close(self) -> None:
        """Flush, fsync and close the file (reopened on next emit)."""
        with self._lock:
            self._close_locked()

    def __enter__(self) -> "EventJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _ensure_open(self):
        if self._file is None:
            directory = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(directory, exist_ok=True)
            self._file = open(self.path, "a", encoding="utf-8")
        return self._file

    def _close_locked(self) -> None:
        if self._file is not None:
            self._file.flush()
            os.fsync(self._file.fileno())
            self._file.close()
            self._file = None
            self._pending_sync = 0

    def _rotate_locked(self) -> None:
        self._close_locked()
        os.replace(self.path, self.path + ".1")
        fsync_directory(self.path)


class BoundJournal:
    """An :class:`EventJournal` view carrying default correlation fields.

    ``bind`` composes: ``journal.bind(job_id=3).bind(chunk_id=1)``
    stamps both.  Explicit ``emit`` fields win over bound defaults.
    """

    __slots__ = ("_journal", "_fields")

    def __init__(self, journal: EventJournal, fields: Dict[str, Any]):
        self._journal = journal
        self._fields = fields

    def emit(self, kind: str, level: str = "info", **fields: Any) -> int:
        merged = dict(self._fields)
        merged.update(fields)
        return self._journal.emit(kind, level=level, **merged)

    def bind(self, **fields: Any) -> "BoundJournal":
        merged = dict(self._fields)
        merged.update({k: v for k, v in fields.items() if v is not None})
        return BoundJournal(self._journal, merged)


# ----------------------------------------------------------------------
# reading & replay


def _last_seq(path: str) -> int:
    """The last committed sequence number across main + rotated file, or -1."""
    last = -1
    for candidate in (path + ".1", path):
        try:
            with open(candidate, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue  # torn tail from a crash mid-write
                    seq = record.get("seq")
                    if isinstance(seq, int) and seq > last:
                        last = seq
        except OSError:
            continue
    return last


def read_journal(path: str, include_rotated: bool = True) -> List[Dict[str, Any]]:
    """Read journal records in order (rotated generation first).

    A torn *final* line of the newest file is tolerated — that is
    exactly what a crash mid-write leaves behind.  An unparseable line
    anywhere else means real corruption and raises :class:`JournalError`.
    """
    files = []
    if include_rotated and os.path.exists(path + ".1"):
        files.append(path + ".1")
    if os.path.exists(path):
        files.append(path)
    records: List[Dict[str, Any]] = []
    for file_index, file_path in enumerate(files):
        with open(file_path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        for line_index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                is_final = (
                    file_index == len(files) - 1 and line_index == len(lines) - 1
                )
                if is_final:
                    break  # torn tail: the crash case, drop it silently
                raise JournalError(
                    f"corrupt journal line {line_index + 1} in {file_path}"
                ) from None
            records.append(record)
    return records


@dataclass
class JobReplay:
    """One job's state as reconstructed from its ``job.*`` events.

    Mirrors what a live :class:`~repro.service.jobs.Job` handle would
    show: status, progress counters, and the normalized event stream.
    """

    job_id: int
    status: str = "queued"
    completed: int = 0
    total: Optional[int] = None
    chunks: int = 0
    error: Optional[str] = None
    events: List[Dict[str, Any]] = field(default_factory=list)


#: Journal kinds carrying job lifecycle (the service mirrors its
#: JobEvent stream under a ``job.`` prefix).
_JOB_STATUS = {
    "job.queued": "queued",
    "job.started": "running",
    "job.completed": "completed",
    "job.failed": "failed",
}


def replay_jobs(records: Iterable[Dict[str, Any]]) -> Dict[int, JobReplay]:
    """Fold ``job.*`` events back into per-job state, keyed by job id."""
    jobs: Dict[int, JobReplay] = {}
    for record in records:
        kind = record.get("kind", "")
        if not kind.startswith("job."):
            continue
        job_id = record.get("job_id")
        if not isinstance(job_id, int):
            continue
        replay = jobs.get(job_id)
        if replay is None:
            replay = jobs[job_id] = JobReplay(job_id)
        replay.events.append(_normalize(record))
        if kind in _JOB_STATUS:
            replay.status = _JOB_STATUS[kind]
        if kind == "job.queued" and isinstance(record.get("total"), int):
            replay.total = record["total"]
        elif kind == "job.progress":
            replay.chunks += 1
            if isinstance(record.get("completed"), int):
                replay.completed = record["completed"]
            if isinstance(record.get("total"), int):
                replay.total = record["total"]
        elif kind == "job.completed":
            if replay.total is not None:
                replay.completed = replay.total
        elif kind == "job.failed":
            replay.error = record.get("error")
    return jobs


def job_event_stream(
    records: Iterable[Dict[str, Any]], job_id: int
) -> List[Dict[str, Any]]:
    """The job's normalized ``job.*`` event stream, in journal order.

    Normalization strips the fields that legitimately differ between two
    executions of the same work (sequence numbers, wall-clock stamps),
    so an interrupted run's stream can be compared event-for-event as a
    prefix of an uninterrupted run's stream.
    """
    return [
        _normalize(record)
        for record in records
        if record.get("kind", "").startswith("job.")
        and record.get("job_id") == job_id
    ]


def _normalize(record: Dict[str, Any]) -> Dict[str, Any]:
    return {k: v for k, v in record.items() if k not in ("seq", "ts")}

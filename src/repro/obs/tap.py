"""A deterministic-safe observation tap on the kernel step pipeline.

:class:`TappedPipeline` follows the exact contract of
:class:`repro.telemetry.probe.ProbedPipeline`: it *shares* the wrapped
pipeline's stage objects (``pipeline.stage(name)`` and stage-specific
methods keep working, which the lockstep batch executor relies on) and
replaces only the cycle walk — the inner pipeline runs unchanged, then
the capture callback observes the finished context.  The callback must
only **read** the context; it must never touch RNG streams, context
fields or stage state, so tapped runs are bit-identical to untapped runs
at any capture rate (pinned by the golden suite with the flight recorder
enabled at full rate).

Stacking works in either direction: tapping a
:class:`~repro.telemetry.probe.ProbedPipeline` preserves its stage
timing because the *inner* ``run_cycle`` is delegated to, not rebuilt.

The batch executor cannot go through ``run_cycle`` (it walks stage
columns across many pipelines), so it instead looks for the public
``tap_capture`` attribute when it extracts per-stage methods and chains
the capture after the run's record stage — the same "after the completed
cycle" observation point.
"""

from typing import Callable, Sequence

from repro.kernel.context import StepContext
from repro.kernel.pipeline import StepPipeline

#: The observation callback: called once per completed cycle, read-only.
CaptureFn = Callable[[StepContext], None]


class TappedPipeline(StepPipeline):
    """A pipeline view that runs the inner cycle, then observes the context."""

    __slots__ = ("tap_capture", "_inner_run_cycle", "_inner_run_cycle_batch")

    def __init__(self, inner: StepPipeline, capture: CaptureFn):
        super().__init__(inner.stages)
        self.tap_capture = capture
        self._inner_run_cycle = inner.run_cycle
        self._inner_run_cycle_batch = inner.run_cycle_batch

    def run_cycle(self, ctx: StepContext) -> None:
        self._inner_run_cycle(ctx)
        self.tap_capture(ctx)

    def run_cycle_batch(self, contexts: Sequence[StepContext]) -> None:
        self._inner_run_cycle_batch(contexts)
        capture = self.tap_capture
        for ctx in contexts:
            capture(ctx)

"""Post-mortem queries: join journal, flight records and telemetry.

This is the read side of :mod:`repro.obs` — pure functions over the
artifacts the write side produces, shared by tests and the
``scripts/obs_report.py`` CLI:

* :func:`load_flight_record` / :func:`iter_flight_records` parse the
  flight-record JSON artifacts into :class:`FlightRecord`;
* :func:`matches_trajectory_tail` pins the black-box contract — the
  record's kinematic tail equals the run's recorded trajectory
  bit-for-bit (both read the same post-actuate world state);
* :func:`timeline_lines`, :func:`job_summaries`, :func:`run_events` and
  :func:`hazard_view` render journal + flight records into the
  human-facing timelines, per-job causal summaries and hazard
  forensics.
"""

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.obs.recorder import FLIGHT_RECORD_VERSION


@dataclass
class FlightRecord:
    """One parsed flight-record artifact."""

    path: str
    meta: Dict[str, Any]
    fields: List[str]
    samples: List[List[Any]]

    @property
    def final_sample(self) -> Optional[Dict[str, Any]]:
        """The last captured cycle as a field → value mapping."""
        if not self.samples:
            return None
        return dict(zip(self.fields, self.samples[-1]))

    def column(self, name: str) -> List[Any]:
        """One field's values across all captured cycles."""
        index = self.fields.index(name)
        return [sample[index] for sample in self.samples]


def load_flight_record(path: str) -> FlightRecord:
    """Parse one flight-record artifact (raises on version mismatch)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    version = payload.get("version")
    if version != FLIGHT_RECORD_VERSION:
        raise ValueError(
            f"{path}: flight record version {version!r}, "
            f"expected {FLIGHT_RECORD_VERSION}"
        )
    samples = payload.pop("samples")
    fields = payload.pop("fields")
    return FlightRecord(path=path, meta=payload, fields=fields, samples=samples)


def iter_flight_records(directory: str) -> Iterator[FlightRecord]:
    """Parse every ``flight-*.json`` artifact in ``directory``, name order."""
    if not os.path.isdir(directory):
        return
    for name in sorted(os.listdir(directory)):
        if name.startswith("flight-") and name.endswith(".json"):
            yield load_flight_record(os.path.join(directory, name))


def matches_trajectory_tail(record: FlightRecord, trajectory: Sequence[Any]) -> bool:
    """True when the record's kinematic tail equals the trajectory's.

    Every trajectory sample whose timestamp falls inside the record's
    captured window must have a flight sample at the *same* timestamp
    with bit-identical ``(s, d, speed, steering_wheel_deg)``.  Both
    sides read the same post-actuate world state and JSON round-trips
    floats exactly, so this is an equality check, not a tolerance check.
    Vacuously-empty overlaps fail: a black box that recorded nothing of
    the trajectory's window does not "match" it.
    """
    if not record.samples or not trajectory:
        return False
    time_index = record.fields.index("time")
    kinematics = tuple(
        record.fields.index(name)
        for name in ("ego_s", "ego_d", "ego_speed", "ego_steering_deg")
    )
    keyed = {
        sample[time_index]: tuple(sample[i] for i in kinematics)
        for sample in record.samples
    }
    first_time = record.samples[0][time_index]
    compared = 0
    for point in trajectory:
        if point.time < first_time:
            continue
        expected = keyed.get(point.time)
        if expected is None:
            return False
        if expected != (point.s, point.d, point.speed, point.steering_wheel_deg):
            return False
        compared += 1
    return compared > 0


# ----------------------------------------------------------------------
# journal rendering


def timeline_lines(
    records: Iterable[Dict[str, Any]], job_id: Optional[int] = None
) -> List[str]:
    """One human-readable line per journal event, in journal order."""
    lines = []
    for record in records:
        if job_id is not None and record.get("job_id") != job_id:
            continue
        context = " ".join(
            f"{key}={record[key]}"
            for key in sorted(record)
            if key not in ("v", "kind", "level", "seq", "ts")
        )
        level = record.get("level", "info")
        marker = "!" if level != "info" else " "
        lines.append(
            "#{seq:<6}{marker} {kind:<28} {context}".format(
                seq=record.get("seq", "?"),
                marker=marker,
                kind=record.get("kind", "?"),
                context=context,
            ).rstrip()
        )
    return lines


def run_events(
    records: Iterable[Dict[str, Any]], fingerprint: str
) -> List[Dict[str, Any]]:
    """Every journal event correlated to one task fingerprint.

    Matches both exact fingerprints and prefixes (the CLI convenience:
    fingerprints are long hashes, a unique prefix is enough).
    """
    matched = []
    for record in records:
        value = record.get("fingerprint")
        if isinstance(value, str) and value.startswith(fingerprint):
            matched.append(record)
    return matched


def job_summaries(records: Iterable[Dict[str, Any]]) -> List[str]:
    """One causal summary line per job seen in the journal.

    Joins the ``job.*`` lifecycle with the correlated ``supervisor.*``,
    ``cache.*``, ``search.*`` and ``checkpoint.*`` events that carried
    the same ``job_id``.
    """
    per_job: Dict[int, Dict[str, Any]] = {}
    for record in records:
        job_id = record.get("job_id")
        if not isinstance(job_id, int):
            continue
        stats = per_job.setdefault(
            job_id,
            {
                "status": "queued",
                "completed": 0,
                "total": None,
                "chunks": 0,
                "error": None,
                "counts": {},
                "quarantined": [],
            },
        )
        kind = record.get("kind", "")
        if kind == "job.queued":
            if isinstance(record.get("total"), int):
                stats["total"] = record["total"]
        elif kind == "job.started":
            stats["status"] = "running"
        elif kind == "job.progress":
            stats["chunks"] += 1
            if isinstance(record.get("completed"), int):
                stats["completed"] = record["completed"]
            if isinstance(record.get("total"), int):
                stats["total"] = record["total"]
        elif kind == "job.completed":
            stats["status"] = "completed"
            if stats["total"] is not None:
                stats["completed"] = stats["total"]
        elif kind == "job.failed":
            stats["status"] = "failed"
            stats["error"] = record.get("error")
        else:
            counts = stats["counts"]
            counts[kind] = counts.get(kind, 0) + 1
            if kind == "supervisor.quarantine":
                fingerprint = record.get("fingerprint")
                if fingerprint:
                    stats["quarantined"].append(fingerprint)
    lines = []
    for job_id in sorted(per_job):
        stats = per_job[job_id]
        parts = [f"job {job_id}: {stats['status']}"]
        if stats["total"] is not None:
            parts.append(f"{stats['completed']}/{stats['total']} runs")
        if stats["chunks"]:
            parts.append(f"{stats['chunks']} chunks")
        for kind, label in (
            ("supervisor.retry", "retries"),
            ("supervisor.timeout", "timeouts"),
            ("supervisor.respawn", "respawns"),
            ("supervisor.bisect", "bisections"),
            ("supervisor.quarantine", "quarantined"),
            ("cache.hit", "cache hits"),
            ("cache.miss", "cache misses"),
            ("cache.bypass", "cache bypasses"),
            ("search.generation", "generations"),
        ):
            count = stats["counts"].get(kind, 0)
            if count:
                parts.append(f"{count} {label}")
        if stats["quarantined"]:
            shown = ", ".join(fp[:12] for fp in stats["quarantined"])
            parts.append(f"quarantined fingerprints: {shown}")
        if stats["error"]:
            parts.append(f"error: {stats['error']}")
        lines.append("; ".join(parts))
    return lines


# ----------------------------------------------------------------------
# hazard forensics


def hazard_view(record: FlightRecord, final_cycles: int = 50) -> str:
    """Reconstruct the final seconds of one flight record as text.

    Shows the record's identity, the trigger, and the last
    ``final_cycles`` captured cycles with the detector-visible columns —
    the "what was the car doing just before the hazard" view.
    """
    meta = record.meta
    header = (
        "flight record {path}\n"
        "  scenario={scenario} attack={attack} strategy={strategy} "
        "seed={seed} trigger={trigger}\n"
        "  captured {count} of {cycles} cycles "
        "(capacity {capacity}, every {every})"
    ).format(
        path=os.path.basename(record.path),
        scenario=meta.get("scenario"),
        attack=meta.get("attack") or "none",
        strategy=meta.get("strategy"),
        seed=meta.get("seed"),
        trigger=meta.get("trigger"),
        count=len(record.samples),
        cycles=meta.get("cycles"),
        capacity=meta.get("capacity"),
        every=meta.get("capture_every"),
    )
    lines = [header, "", "    time    speed    d      gap     steer   haz col drv"]
    index = {name: i for i, name in enumerate(record.fields)}
    for sample in record.samples[-final_cycles:]:
        gap = sample[index["lead_gap"]]
        lines.append(
            "  {time:7.2f} {speed:7.2f} {d:6.2f} {gap:>7} {steer:7.1f}   "
            "{haz:>3} {col:>3} {drv:>3}".format(
                time=sample[index["time"]],
                speed=sample[index["ego_speed"]],
                d=sample[index["ego_d"]],
                gap="-" if gap is None else f"{gap:.1f}",
                steer=sample[index["ego_steering_deg"]],
                haz=sample[index["new_hazards"]],
                col="X" if sample[index["collision"]] else ".",
                drv="D" if sample[index["driver_engaged"]] else ".",
            )
        )
    return "\n".join(lines)

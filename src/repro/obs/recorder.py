"""The per-run flight recorder: a bounded black box for the last N cycles.

Every run gets its own :class:`FlightRecorder` fed by the pipeline tap
(:mod:`repro.obs.tap`): once per completed cycle the recorder copies a
small tuple of kinematics, plan/command values, injection activity and
detector state out of the :class:`~repro.kernel.StepContext` into a
bounded ring buffer.  Most runs are boring and the buffer dies with the
run; when a run turns *interesting* — hazard, collision, alert, or a
failure/quarantine path that aborts the run — the buffer is flushed to a
compact JSON artifact via the atomic write-rename idiom of
:mod:`repro.resilience.checkpoint`, so every hazardous run in a campaign
ships the final seconds that led up to the event.

The capture path is deliberately read-only and allocation-light (one
tuple per captured cycle, lazy ring trim): the bench suite pins its
overhead under 3 % via ``flight_recorder_overhead_pct`` in
``BENCH_throughput.json``, and the golden suite pins bit-identical
results with the tap enabled at full rate.

The kinematic fields of each sample (``time``/``ego_s``/``ego_d``/
``ego_speed``/``ego_steering_deg``) read the very same scattered values
as :class:`~repro.analysis.metrics.TrajectorySample`, so a flight
record's tail matches the run's recorded trajectory bit-for-bit
(:func:`repro.obs.query.matches_trajectory_tail` is the pinned check).
"""

import itertools
import os
import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.kernel.context import StepContext
from repro.resilience.checkpoint import atomic_write_json

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.analysis.metrics import RunResult

#: Bumped when the artifact layout changes; readers check it.
FLIGHT_RECORD_VERSION = 1

#: Column names of one flight sample, in tuple order.
FLIGHT_SAMPLE_FIELDS = (
    "cycle",
    "time",
    "ego_s",
    "ego_d",
    "ego_speed",
    "ego_heading_error",
    "ego_steering_deg",
    "lead_gap",
    "lead_speed",
    "adas_accel",
    "adas_brake",
    "adas_steering_deg",
    "executed_accel",
    "executed_brake",
    "executed_steering_deg",
    "driver_engaged",
    "collision",
    "new_hazards",
    "lane_invasions",
)

_UNSAFE = re.compile(r"[^A-Za-z0-9_.-]+")

#: Process-wide artifact counter: with the pid in the name this makes
#: artifact filenames unique across pool workers and within a worker.
_artifact_counter = itertools.count()


def _sanitize(part: str) -> str:
    return _UNSAFE.sub("-", part) or "none"


@dataclass(frozen=True)
class FlightRecorderConfig:
    """Picklable recorder settings, shipped to pool workers as-is.

    Attributes:
        output_dir: Directory receiving flight-record artifacts (created
            on first flush).
        capacity: Ring size — the last ``capacity`` captured cycles
            survive into the artifact (default 300 cycles = 3 s at
            100 Hz of full-rate capture).
        capture_every: Capture one cycle in every ``capture_every``
            (1 = full rate).  Sub-sampling stretches the ring's time
            window at the same memory cost.
        flush_on: Which run outcomes flush the ring to disk.  Any of
            ``"hazard"``, ``"collision"``, ``"alert"``, ``"failure"``
            (run aborted by an exception / supervisor kill), or
            ``"always"`` to keep every run's black box.
    """

    output_dir: str
    capacity: int = 300
    capture_every: int = 1
    flush_on: Tuple[str, ...] = ("hazard", "collision", "alert", "failure")

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("FlightRecorderConfig.capacity must be positive")
        if self.capture_every <= 0:
            raise ValueError("FlightRecorderConfig.capture_every must be positive")

    def recorder_for(self, sim: object) -> "FlightRecorder":
        """Build the per-run recorder for a built :class:`Simulation`."""
        config = sim.config  # type: ignore[attr-defined]
        scenario = sim.world.config.scenario  # type: ignore[attr-defined]
        return FlightRecorder(
            self,
            scenario=scenario.name,
            attack=config.attack_type.value if config.attack_type else None,
            strategy=sim.strategy.name,  # type: ignore[attr-defined]
            seed=config.seed,
        )


class FlightRecorder:
    """One run's black box: bounded capture + outcome-gated flush."""

    __slots__ = (
        "config",
        "scenario",
        "attack",
        "strategy",
        "seed",
        "_samples",
        "_cycle",
        "_every",
        "_high_water",
        "_flushed_path",
    )

    def __init__(
        self,
        config: FlightRecorderConfig,
        scenario: str,
        attack: Optional[str],
        strategy: str,
        seed: int,
    ):
        self.config = config
        self.scenario = scenario
        self.attack = attack
        self.strategy = strategy
        self.seed = seed
        self._samples: List[tuple] = []
        self._cycle = 0
        self._every = config.capture_every
        # Trim lazily in blocks so the hot path does one `del` per
        # `capacity` captures instead of a deque rotation per capture.
        self._high_water = 2 * config.capacity
        self._flushed_path: Optional[str] = None

    # ------------------------------------------------------------------
    # hot path

    def capture(self, ctx: StepContext) -> None:
        """Observe one completed cycle (read-only; tap callback)."""
        cycle = self._cycle
        self._cycle = cycle + 1
        if cycle % self._every:
            return
        adas = ctx.adas_command
        executed = ctx.executed_command
        samples = self._samples
        samples.append(
            (
                cycle,
                ctx.end_time,
                ctx.ego_s,
                ctx.ego_d,
                ctx.ego_speed,
                ctx.ego_heading_error,
                ctx.ego_steering_deg,
                ctx.lead_gap,
                ctx.lead_speed,
                adas.accel,
                adas.brake,
                adas.steering_angle_deg,
                executed.accel,
                executed.brake,
                executed.steering_angle_deg,
                ctx.driver_engaged,
                ctx.collision is not None,
                len(ctx.new_hazards),
                ctx.lane_invasions,
            )
        )
        if len(samples) > self._high_water:
            del samples[: len(samples) - self.config.capacity]

    # ------------------------------------------------------------------
    # flush decisions

    def trigger_for(self, result: "RunResult") -> Optional[str]:
        """The flush trigger this result fires, or ``None`` to discard."""
        flush_on = self.config.flush_on
        if "always" in flush_on:
            return "always"
        if "collision" in flush_on and result.accidents:
            return "collision"
        if "hazard" in flush_on and result.hazards:
            return "hazard"
        if "alert" in flush_on and result.alerts:
            return "alert"
        return None

    def finalize(self, result: "RunResult") -> Optional[str]:
        """Flush the ring if the finished run is interesting.

        Returns the artifact path when a record was written.
        """
        trigger = self.trigger_for(result)
        if trigger is None:
            return None
        return self.dump(trigger)

    def abort(self, trigger: str = "failure") -> Optional[str]:
        """Best-effort flush when the run dies before :meth:`finalize`.

        Swallows write errors: the black box must never turn a failing
        run into a failing *flush* (the original exception is what the
        supervisor needs to see).
        """
        if "failure" not in self.config.flush_on and "always" not in self.config.flush_on:
            return None
        try:
            return self.dump(trigger)
        except OSError:
            return None

    def dump(self, trigger: str = "manual") -> str:
        """Write the current ring to a flight-record artifact, return its path."""
        samples = self._samples
        if len(samples) > self.config.capacity:
            del samples[: len(samples) - self.config.capacity]
        os.makedirs(self.config.output_dir, exist_ok=True)
        name = "flight-{}-{}-seed{}-{}-{}-{}.json".format(
            _sanitize(self.scenario),
            _sanitize(self.attack or "none"),
            self.seed,
            _sanitize(trigger),
            os.getpid(),
            next(_artifact_counter),
        )
        path = os.path.join(self.config.output_dir, name)
        atomic_write_json(
            path,
            {
                "version": FLIGHT_RECORD_VERSION,
                "scenario": self.scenario,
                "attack": self.attack,
                "strategy": self.strategy,
                "seed": self.seed,
                "trigger": trigger,
                "capacity": self.config.capacity,
                "capture_every": self.config.capture_every,
                "cycles": self._cycle,
                "fields": list(FLIGHT_SAMPLE_FIELDS),
                "samples": [list(sample) for sample in samples],
            },
        )
        self._flushed_path = path
        return path

    @property
    def flushed_path(self) -> Optional[str]:
        """Path of the most recent artifact written for this run, if any."""
        return self._flushed_path

"""Observability: per-run flight recorder, causal event journal, post-mortem.

``repro.telemetry`` answers *how fast / how many*; this package answers
*what happened in run X, in which job, after which retry*:

* :mod:`repro.obs.tap` — a deterministic-safe :class:`~repro.kernel.
  StepPipeline` tap (same contract as the telemetry probe: shared stage
  objects, no RNG / context writes) that observes the context once per
  completed cycle;
* :mod:`repro.obs.recorder` — the per-run **flight recorder**: a bounded
  ring buffer of the last N cycles (kinematics, plan/command values,
  injection activity, detector state) flushed to a compact JSON artifact
  when a run turns interesting (hazard, collision, alert, failure — or
  always, or on demand);
* :mod:`repro.obs.journal` — the append-only **causal event journal**:
  JSONL with service-wide monotonic sequence numbers and correlation
  fields (``job_id → chunk_id → fingerprint → attempt``) fed by the
  campaign service, the supervisor, the run cache, the search driver and
  checkpointing, durable via the fsync idioms of
  :mod:`repro.resilience.checkpoint`, with rotation and a crash-tolerant
  reader that can rebuild a job's state after process death;
* :mod:`repro.obs.query` — the post-mortem join of journal + flight
  records + telemetry snapshot (timelines, per-job causal summaries,
  hazard forensics), driven by ``scripts/obs_report.py``.
"""

from repro.obs.journal import (
    BoundJournal,
    EventJournal,
    JournalError,
    JobReplay,
    job_event_stream,
    read_journal,
    replay_jobs,
)
from repro.obs.query import (
    FlightRecord,
    hazard_view,
    iter_flight_records,
    job_summaries,
    load_flight_record,
    matches_trajectory_tail,
    run_events,
    timeline_lines,
)
from repro.obs.recorder import (
    FLIGHT_RECORD_VERSION,
    FLIGHT_SAMPLE_FIELDS,
    FlightRecorder,
    FlightRecorderConfig,
)
from repro.obs.tap import TappedPipeline

__all__ = [
    "BoundJournal",
    "EventJournal",
    "FLIGHT_RECORD_VERSION",
    "FLIGHT_SAMPLE_FIELDS",
    "FlightRecord",
    "FlightRecorder",
    "FlightRecorderConfig",
    "JobReplay",
    "JournalError",
    "TappedPipeline",
    "hazard_view",
    "iter_flight_records",
    "job_event_stream",
    "job_summaries",
    "load_flight_record",
    "matches_trajectory_tail",
    "read_journal",
    "replay_jobs",
    "run_events",
    "timeline_lines",
]

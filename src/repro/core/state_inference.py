"""Safety context inference (Section III-C, step 2).

Converts the eavesdropped raw state into the human-interpretable state
variables used by the safety context table:

* **HWT** — headway time = relative distance / current speed,
* **RS** — relative speed = current speed − lead speed (positive when the
  ego vehicle is closing on the lead),
* **d_left / d_right** — distance from the vehicle's sides to the left and
  right edges of the current lane.
"""

from dataclasses import dataclass

from repro.core.eavesdropper import EavesdroppedData


@dataclass(frozen=True)
class InferredContext:
    """The attacker's inferred safety-relevant state."""

    time: float
    valid: bool                      # False until all needed messages have arrived
    v_ego: float = 0.0               # m/s
    has_lead: bool = False
    lead_distance: float = float("inf")
    lead_speed: float = 0.0
    relative_speed: float = 0.0      # v_ego - v_lead (RS in the paper)
    headway_time: float = float("inf")
    d_left: float = float("inf")     # m from vehicle's left side to the left lane line
    d_right: float = float("inf")    # m from vehicle's right side to the right lane line
    lateral_offset: float = 0.0      # m from lane centre, + left


class StateInference:
    """Derives :class:`InferredContext` from :class:`EavesdroppedData`."""

    def __init__(self, vehicle_width: float = 1.8, min_speed_for_headway: float = 0.5):
        """Args:
            vehicle_width: The attacker's estimate of the vehicle width
                (publicly available for the supported car models).
            min_speed_for_headway: Below this speed the headway time is
                reported as infinite (stationary vehicles are handled by
                the relative-speed term instead).
        """
        self.vehicle_width = vehicle_width
        self.min_speed_for_headway = min_speed_for_headway

    def infer(self, data: EavesdroppedData) -> InferredContext:
        """Infer the safety context from the eavesdropped snapshot."""
        if not data.complete:
            return InferredContext(time=data.time, valid=False)

        v_ego = max(0.0, data.v_ego)

        has_lead = data.has_lead and data.lead_distance is not None
        lead_distance = float("inf")
        lead_speed = 0.0
        relative_speed = 0.0
        headway_time = float("inf")
        if has_lead:
            lead_distance = max(0.0, data.lead_distance)
            # radarState reports v_rel = v_lead - v_ego; the paper's RS is
            # v_ego - v_lead.
            relative_speed = -(data.lead_relative_speed or 0.0)
            lead_speed = max(0.0, v_ego - relative_speed)
            if v_ego > self.min_speed_for_headway:
                headway_time = lead_distance / v_ego

        d_left = float("inf")
        d_right = float("inf")
        if data.left_line_offset is not None:
            d_left = data.left_line_offset - self.vehicle_width / 2.0
        if data.right_line_offset is not None:
            d_right = -data.right_line_offset - self.vehicle_width / 2.0

        return InferredContext(
            time=data.time,
            valid=True,
            v_ego=v_ego,
            has_lead=has_lead,
            lead_distance=lead_distance,
            lead_speed=lead_speed,
            relative_speed=relative_speed,
            headway_time=headway_time,
            d_left=d_left,
            d_right=d_right,
            lateral_offset=data.lateral_offset or 0.0,
        )

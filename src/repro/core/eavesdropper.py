"""Eavesdropping on the ADAS messaging layer (Section III-C, step 1).

OpenPilot's Cereal messages are unauthenticated and their schema is
public, so any process on the device (or a remote subscriber) can read
them.  The eavesdropper subscribes to the three services the attack needs
— ``gpsLocationExternal`` for the ego speed, ``modelV2`` for the lane line
positions, and ``radarState`` for the lead vehicle's relative distance and
speed — and assembles the latest values into a snapshot.
"""

from dataclasses import dataclass
from typing import Optional

from repro.messaging.bus import MessageBus
from repro.messaging.pubsub import SubMaster

EAVESDROPPED_SERVICES = ("gpsLocationExternal", "modelV2", "radarState")


@dataclass(slots=True)
class EavesdroppedData:
    """The raw state information the attacker has collected so far.

    A snapshot is produced on every attacker control cycle and consumed
    immediately by the state inference; consumers must not retain or
    mutate instances (the eavesdropper reuses the previous snapshot,
    refreshing only ``time``, on cycles where no new message arrived).
    """

    time: float
    v_ego: Optional[float] = None            # m/s, from GPS
    lateral_offset: Optional[float] = None   # m, from the perception model
    left_line_offset: Optional[float] = None
    right_line_offset: Optional[float] = None
    lane_width: Optional[float] = None
    has_lead: bool = False
    lead_distance: Optional[float] = None    # m, from radar
    lead_relative_speed: Optional[float] = None  # m/s, lead - ego (radar convention)

    @property
    def complete(self) -> bool:
        """True once every service has delivered at least one message."""
        return (
            self.v_ego is not None
            and self.lateral_offset is not None
            and self.left_line_offset is not None
        )


class Eavesdropper:
    """Passive subscriber assembling the attacker's view of the system."""

    def __init__(self, message_bus: MessageBus):
        self._sub_master = SubMaster(message_bus, list(EAVESDROPPED_SERVICES))
        self.messages_seen = 0
        self._last_snapshot: Optional[EavesdroppedData] = None

    def snapshot(self, time: float) -> EavesdroppedData:
        """Return the attacker's current view of the vehicle state.

        The attacker polls at the 100 Hz control rate but the sensors
        publish at 10–20 Hz, so most polls deliver no new message; in that
        case only the timestamp of the previous snapshot has changed and
        the object is updated in place instead of being rebuilt (snapshots
        are consumed immediately by the state inference and never
        retained, see :class:`EavesdroppedData`).
        """
        fresh = self._sub_master.update()
        self.messages_seen += fresh
        last = self._last_snapshot
        if fresh == 0 and last is not None:
            last.time = time
            return last

        gps = self._sub_master["gpsLocationExternal"]
        model = self._sub_master["modelV2"]
        radar = self._sub_master["radarState"]

        v_ego = gps.speed if gps is not None else None

        lateral_offset = left_line = right_line = lane_width = None
        if model is not None:
            lateral_offset = model.lateral_offset
            lane_width = model.lane_width
            if len(model.lane_lines) >= 2:
                left_line = model.lane_lines[0].offset
                right_line = model.lane_lines[1].offset

        has_lead = False
        lead_distance = lead_relative_speed = None
        if radar is not None and radar.lead_one is not None and radar.lead_one.status:
            has_lead = True
            lead_distance = radar.lead_one.d_rel
            lead_relative_speed = radar.lead_one.v_rel

        snapshot = EavesdroppedData(
            time=time,
            v_ego=v_ego,
            lateral_offset=lateral_offset,
            left_line_offset=left_line,
            right_line_offset=right_line,
            lane_width=lane_width,
            has_lead=has_lead,
            lead_distance=lead_distance,
            lead_relative_speed=lead_relative_speed,
        )
        self._last_snapshot = snapshot
        return snapshot

    def close(self) -> None:
        """Unsubscribe from all services."""
        self._sub_master.close()

"""CAN-level deployment of the attack (Section III-C, step 5; Fig. 4).

Instead of hooking the ADAS output variables, the attacker can corrupt
the CAN frames that carry the actuator commands: decode the target frame
with the public DBC, overwrite the target signal, and recompute the
checksum so the frame still passes integrity checks.  This module provides
the low-level :func:`tamper_signal` primitive and a
:class:`CanAttackInterceptor` that drives a full :class:`AttackEngine`
from the CAN bus (registered as a bus transformer).
"""

from typing import Dict, Mapping, Optional

from repro.can.bus import CANBus
from repro.can.dbc import DBC
from repro.can.frame import CANFrame
from repro.can.honda import ADDR, HONDA_DBC
from repro.core.attack_engine import AttackEngine
from repro.messaging.messages import CarState
from repro.sim.vehicle import ActuatorCommand


def tamper_signal(
    frame: CANFrame, dbc: DBC, values: Mapping[str, float]
) -> CANFrame:
    """Return a copy of ``frame`` with the given signals overwritten.

    The frame is decoded with ``dbc``, the signals in ``values`` replaced,
    and the message re-encoded — which recomputes the checksum, exactly as
    the paper describes ("the attacker also updates the checksum ... so
    the integrity of the corrupted CAN message is maintained").
    """
    message = dbc.message_by_address(frame.address)
    decoded = dbc.decode(frame, check=False)
    decoded.update(values)
    counter = int(decoded.get("COUNTER", 0))
    payload = {
        name: value
        for name, value in decoded.items()
        if name not in ("CHECKSUM", "COUNTER")
    }
    return dbc.encode(
        message.name, payload, counter=counter, bus=frame.bus, timestamp=frame.timestamp
    )


class CanAttackInterceptor:
    """Man-in-the-middle attacker on the CAN bus.

    Wraps an :class:`AttackEngine`: every outgoing actuator frame is
    decoded, passed through the engine's decision logic, and re-encoded
    (with a fresh checksum) if the engine chose to corrupt it.  Register
    with :meth:`attach`.
    """

    def __init__(self, engine: AttackEngine, dbc: DBC = HONDA_DBC):
        self.engine = engine
        self.dbc = dbc
        self._car_state = CarState()
        self._pending: Dict[int, ActuatorCommand] = {}
        self._time = 0.0
        self._last_decoded = ActuatorCommand()

    def attach(self, bus: CANBus) -> "CanAttackInterceptor":
        """Register this interceptor as a transformer on ``bus``."""
        bus.add_transformer(self.transform)
        return self

    def observe_car_state(self, time: float, car_state: CarState) -> None:
        """Give the interceptor the attacker's current view of the car."""
        self._time = time
        self._car_state = car_state

    def transform(self, frame: CANFrame) -> Optional[CANFrame]:
        """CAN bus transformer callback."""
        if frame.address == ADDR["ACC_CONTROL"]:
            decoded = self.dbc.decode(
                frame, check=False, signals=("ACCEL_COMMAND", "BRAKE_COMMAND")
            )
            command = ActuatorCommand(
                accel=max(0.0, decoded["ACCEL_COMMAND"]),
                brake=max(0.0, decoded["BRAKE_COMMAND"]),
                steering_angle_deg=self._last_decoded.steering_angle_deg,
            )
            corrupted = self.engine.output_hook(frame.timestamp or self._time, command, self._car_state)
            self._last_decoded = corrupted
            if corrupted.accel == command.accel and corrupted.brake == command.brake:
                return None
            return tamper_signal(
                frame,
                self.dbc,
                {"ACCEL_COMMAND": corrupted.accel, "BRAKE_COMMAND": corrupted.brake},
            )

        if frame.address == ADDR["STEERING_CONTROL"]:
            commanded_angle = self.dbc.decode_signal(frame, "STEER_ANGLE_CMD", check=False)
            # Only tamper with the steering frame when the active attack
            # actually targets the steering channel; otherwise the ADAS's
            # legitimate lane-keeping command passes through untouched.
            if not (self.engine.active and self.engine.spec.corrupts_steering):
                self._last_decoded = ActuatorCommand(
                    accel=self._last_decoded.accel,
                    brake=self._last_decoded.brake,
                    steering_angle_deg=commanded_angle,
                )
                return None
            corrupted_angle = self._last_decoded.steering_angle_deg
            if abs(corrupted_angle - commanded_angle) < 1e-9:
                return None
            return tamper_signal(frame, self.dbc, {"STEER_ANGLE_CMD": corrupted_angle})

        return None

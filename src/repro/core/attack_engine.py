"""The attack engine: ties eavesdropping, context inference, matching,
activation timing and value corruption together (Fig. 1 of the paper).

The engine is deployed as an *output hook* on the ADAS control stack — the
paper's injection point, where malware corrupts the output variables of
the control software just before they are sent to the actuators.  A
CAN-level deployment of the same engine is provided by
:class:`repro.core.can_tamper.CanAttackInterceptor`.
"""

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.attack_types import AttackSpec, AttackType, spec_for
from repro.core.context_matcher import ContextMatcher
from repro.core.context_table import ContextTable, default_context_table
from repro.core.corruption import CorruptionLimits, ValueCorruptor
from repro.core.eavesdropper import Eavesdropper
from repro.core.state_inference import InferredContext, StateInference
from repro.core.strategies import AttackStrategy
from repro.messaging.bus import MessageBus
from repro.messaging.messages import CarState
from repro.sim.units import DT
from repro.sim.vehicle import ActuatorCommand


@dataclass(frozen=True)
class AttackTuning:
    """Per-run tuning of the attack engine beyond the strategy object.

    Bundles the knobs an attack-parameter search optimises that are not
    part of the :class:`~repro.core.strategies.AttackStrategy` itself:
    the corruption limit sets (injected magnitudes) and the context-table
    threshold parameters (when the Context-Aware strategies activate).
    Everything is a plain float / frozen dataclass, so a tuning travels
    inside a pickled :class:`~repro.injection.engine.SimulationConfig`
    to pool workers; ``None`` thresholds keep the defaults of
    :func:`~repro.core.context_table.default_context_table`.
    """

    corruption_limits: CorruptionLimits = CorruptionLimits()
    t_safe: Optional[float] = None
    beta1: Optional[float] = None
    beta2: Optional[float] = None
    edge_threshold: Optional[float] = None

    def build_context_table(self) -> ContextTable:
        """Table I with this tuning's thresholds (defaults where ``None``)."""
        kwargs = {}
        if self.t_safe is not None:
            kwargs["t_safe"] = self.t_safe
        if self.beta1 is not None:
            kwargs["beta1"] = self.beta1
        if self.beta2 is not None:
            kwargs["beta2"] = self.beta2
        if self.edge_threshold is not None:
            kwargs["edge_threshold"] = self.edge_threshold
        return default_context_table(**kwargs)


@dataclass
class AttackRecord:
    """Everything the analysis layer needs to know about one attack run."""

    attack_type: AttackType
    strategy_name: str
    activated: bool = False
    activation_time: Optional[float] = None
    deactivation_time: Optional[float] = None
    activation_reason: str = ""
    steer_direction: int = 0
    stopped_by_driver: bool = False
    injected_steps: int = 0

    @property
    def duration(self) -> Optional[float]:
        """Actual attack duration in seconds (None if never activated)."""
        if self.activation_time is None:
            return None
        if self.deactivation_time is None:
            return None
        return self.deactivation_time - self.activation_time


class AttackEngine:
    """Per-run attack orchestrator."""

    def __init__(
        self,
        message_bus: MessageBus,
        attack_type: AttackType,
        strategy: AttackStrategy,
        seed: int = 0,
        context_table: Optional[ContextTable] = None,
        corruption_limits: CorruptionLimits = CorruptionLimits(),
        dt: float = DT,
    ):
        self.spec: AttackSpec = spec_for(attack_type)
        self.strategy = strategy
        self.rng = np.random.default_rng(seed)
        self.strategy.prepare(self.rng)

        self.eavesdropper = Eavesdropper(message_bus)
        self.inference = StateInference()
        self.matcher = ContextMatcher(context_table or default_context_table())
        self.corruptor = ValueCorruptor(strategy.corruption_mode, corruption_limits, dt)

        self.record = AttackRecord(attack_type=attack_type, strategy_name=strategy.name)
        self.last_context: Optional[InferredContext] = None

        self._active = False
        self._finished = False
        self._hazard_occurred = False
        self._driver_engaged = False
        self._previous_steering = 0.0
        self._steer_direction = 0

    # -- notifications from the simulation loop -----------------------------

    @property
    def active(self) -> bool:
        """True while the attack is currently injecting faulty commands."""
        return self._active

    def notify_hazard(self) -> None:
        """Tell the engine a hazard has occurred (used to stop the attack)."""
        self._hazard_occurred = True

    def notify_driver_engaged(self) -> None:
        """The driver has taken over; the attack stops immediately."""
        self._driver_engaged = True
        if self._active:
            self.record.stopped_by_driver = True

    # -- the ADAS output hook ------------------------------------------------

    def output_hook(
        self, time: float, command: ActuatorCommand, car_state: CarState
    ) -> ActuatorCommand:
        """Inspect the system state and, when appropriate, corrupt the command."""
        snapshot = self.eavesdropper.snapshot(time)
        context = self.inference.infer(snapshot)
        self.last_context = context
        if context.valid:
            self.corruptor.observe_speed(context.v_ego)
        matches = self.matcher.match(context) if context.valid else []

        if self._driver_engaged:
            self._deactivate(time)
            return command

        if not self._active and not self._finished:
            decision = self.strategy.should_activate(time, self.spec, matches)
            if decision.activate:
                self._active = True
                self._steer_direction = decision.steer_direction
                self.record.activated = True
                self.record.activation_time = time
                self.record.activation_reason = decision.reason
                self.record.steer_direction = decision.steer_direction
                self._previous_steering = command.steering_angle_deg

        if self._active:
            if self.strategy.should_deactivate(
                time, self.record.activation_time, self._hazard_occurred
            ):
                self._deactivate(time)
                return command
            corrupted = self.corruptor.corrupt(
                command,
                self.spec,
                self._steer_direction,
                self._previous_steering,
                cruise_speed=car_state.cruise_speed,
            )
            self._previous_steering = corrupted.steering_angle_deg
            self.record.injected_steps += 1
            return corrupted

        self._previous_steering = command.steering_angle_deg
        return command

    def _deactivate(self, time: float) -> None:
        if self._active:
            self._active = False
            self.record.deactivation_time = time
        self._finished = True

    def close(self) -> None:
        """Release messaging subscriptions."""
        self.eavesdropper.close()

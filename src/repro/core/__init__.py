"""The paper's primary contribution: the Context-Aware safety-critical attack.

The attack pipeline (Section III of the paper) is decomposed into:

* :mod:`repro.core.eavesdropper` — subscribes to ``gpsLocationExternal``,
  ``modelV2`` and ``radarState`` on the messaging layer.
* :mod:`repro.core.state_inference` — turns raw eavesdropped data into the
  human-interpretable state variables of the safety specification
  (headway time, relative speed, distance to lane edges).
* :mod:`repro.core.context_table` / :mod:`repro.core.context_matcher` —
  the STPA-derived safety context table (Table I) and its matcher.
* :mod:`repro.core.kalman` — the scalar Kalman filter used to predict the
  ego speed for strategic value corruption (Eq. 2–3).
* :mod:`repro.core.corruption` — strategic value corruption (Eq. 1).
* :mod:`repro.core.attack_types` — the six attack types of Table II.
* :mod:`repro.core.strategies` — Context-Aware and the three random
  baselines of Table III.
* :mod:`repro.core.attack_engine` — orchestrates everything and exposes
  the ADAS output hook used by the fault-injection engine.
* :mod:`repro.core.can_tamper` — CAN-level deployment of the same attack
  (decode → corrupt → re-checksum), as in Fig. 4 of the paper.
"""

from repro.core.attack_types import AttackType, AttackSpec, ControlAction, ATTACK_TYPES
from repro.core.context_table import ContextRule, ContextTable, default_context_table
from repro.core.context_matcher import ContextMatcher, ContextMatch
from repro.core.eavesdropper import Eavesdropper, EavesdroppedData
from repro.core.state_inference import StateInference, InferredContext
from repro.core.kalman import ScalarKalmanFilter
from repro.core.corruption import ValueCorruptor, CorruptionMode
from repro.core.strategies import (
    AttackStrategy,
    ContextAwareStrategy,
    RandomStartDurationStrategy,
    RandomStartStrategy,
    RandomDurationStrategy,
    NoAttackStrategy,
)
from repro.core.attack_engine import AttackEngine, AttackRecord
from repro.core.can_tamper import tamper_signal, CanAttackInterceptor

__all__ = [
    "AttackType",
    "AttackSpec",
    "ControlAction",
    "ATTACK_TYPES",
    "ContextRule",
    "ContextTable",
    "default_context_table",
    "ContextMatcher",
    "ContextMatch",
    "Eavesdropper",
    "EavesdroppedData",
    "StateInference",
    "InferredContext",
    "ScalarKalmanFilter",
    "ValueCorruptor",
    "CorruptionMode",
    "AttackStrategy",
    "ContextAwareStrategy",
    "RandomStartDurationStrategy",
    "RandomStartStrategy",
    "RandomDurationStrategy",
    "NoAttackStrategy",
    "AttackEngine",
    "AttackRecord",
    "tamper_signal",
    "CanAttackInterceptor",
]

"""Attack types and the control actions they corrupt (Table II).

The paper injects faults into the ADAS output variables (gas/acceleration,
brake, steering angle) individually and in combination, yielding six
attack types.  Each attack type maps to the high-level *unsafe control
actions* of the safety context table (u1..u4), which is how the
Context-Aware strategy decides when the attack is worth activating.
"""

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Tuple


class ControlAction(Enum):
    """High-level control actions from the safety context table (Table I)."""

    ACCELERATION = "u1"
    DECELERATION = "u2"
    STEER_LEFT = "u3"
    STEER_RIGHT = "u4"


class AttackType(Enum):
    """The six fault-injection attack types of Table II."""

    ACCELERATION = "Acceleration"
    DECELERATION = "Deceleration"
    STEERING_LEFT = "Steering-Left"
    STEERING_RIGHT = "Steering-Right"
    ACCELERATION_STEERING = "Acceleration-Steering"
    DECELERATION_STEERING = "Deceleration-Steering"


@dataclass(frozen=True)
class AttackSpec:
    """What an attack type corrupts.

    Attributes:
        attack_type: The attack type.
        corrupt_accel: Inject the maximum acceleration into the gas channel.
        corrupt_brake: Inject the maximum braking into the brake channel.
        steer_direction: 0 for no steering corruption, +1 to ramp the
            steering command left, -1 to ramp it right.  Combined
            steering attacks pick the direction at activation time (the
            paper injects "±limitsteer").
        actions: The unsafe control actions (Table I) this attack realises;
            the Context-Aware strategy activates the attack when a context
            rule for any of these actions is matched.
    """

    attack_type: AttackType
    corrupt_accel: bool = False
    corrupt_brake: bool = False
    steer_direction: int = 0
    actions: Tuple[ControlAction, ...] = ()

    @property
    def corrupts_steering(self) -> bool:
        return self.steer_direction != 0 or (
            ControlAction.STEER_LEFT in self.actions or ControlAction.STEER_RIGHT in self.actions
        )


ATTACK_TYPES: Dict[AttackType, AttackSpec] = {
    AttackType.ACCELERATION: AttackSpec(
        AttackType.ACCELERATION,
        corrupt_accel=True,
        actions=(ControlAction.ACCELERATION,),
    ),
    AttackType.DECELERATION: AttackSpec(
        AttackType.DECELERATION,
        corrupt_brake=True,
        actions=(ControlAction.DECELERATION,),
    ),
    AttackType.STEERING_LEFT: AttackSpec(
        AttackType.STEERING_LEFT,
        steer_direction=+1,
        actions=(ControlAction.STEER_LEFT,),
    ),
    AttackType.STEERING_RIGHT: AttackSpec(
        AttackType.STEERING_RIGHT,
        steer_direction=-1,
        actions=(ControlAction.STEER_RIGHT,),
    ),
    AttackType.ACCELERATION_STEERING: AttackSpec(
        AttackType.ACCELERATION_STEERING,
        corrupt_accel=True,
        steer_direction=0,  # direction chosen from the matched context / at random
        actions=(
            ControlAction.ACCELERATION,
            ControlAction.STEER_LEFT,
            ControlAction.STEER_RIGHT,
        ),
    ),
    AttackType.DECELERATION_STEERING: AttackSpec(
        AttackType.DECELERATION_STEERING,
        corrupt_brake=True,
        steer_direction=0,
        actions=(
            ControlAction.DECELERATION,
            ControlAction.STEER_LEFT,
            ControlAction.STEER_RIGHT,
        ),
    ),
}


def spec_for(attack_type: AttackType) -> AttackSpec:
    """Return the :class:`AttackSpec` for ``attack_type``."""
    return ATTACK_TYPES[attack_type]

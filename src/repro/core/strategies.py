"""Attack strategies (Table III of the paper).

A strategy decides *when* an attack is activated, for *how long* it stays
active, and *which values* are injected:

===================  ==================  ==================  ==========
Strategy             Start time          Duration            Values
===================  ==================  ==================  ==========
Random-ST+DUR        Uniform [5, 40] s   Uniform [0.5,2.5] s Fixed
Random-ST            Uniform [5, 40] s   2.5 s               Fixed
Random-DUR           Context-Aware       Uniform [0.5,2.5] s Fixed
Context-Aware        Context-Aware       Context-Aware       Strategic
===================  ==================  ==================  ==========

"Fixed" values are OpenPilot's output maxima; "Strategic" values are
chosen dynamically by the value-corruption optimiser (Eq. 1–3).
"""

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.attack_types import AttackSpec, ControlAction
from repro.core.context_matcher import ContextMatch
from repro.core.corruption import CorruptionMode


@dataclass(frozen=True)
class ActivationDecision:
    """The strategy's decision to activate the attack now."""

    activate: bool
    steer_direction: int = 0   # resolved steering direction for this run
    reason: str = ""


class AttackStrategy:
    """Base class for attack strategies."""

    #: Human-readable strategy name (matches the paper's Table III).
    name: str = "abstract"
    #: How injected values are chosen.
    corruption_mode: CorruptionMode = CorruptionMode.FIXED
    #: Whether activation waits for a critical context.
    context_triggered: bool = False

    def prepare(self, rng: np.random.Generator) -> None:
        """Sample any per-run random parameters (start time, duration...)."""

    def should_activate(
        self, time: float, spec: AttackSpec, matches: Sequence[ContextMatch]
    ) -> ActivationDecision:
        """Decide whether to activate the attack at ``time``."""
        raise NotImplementedError

    def should_deactivate(
        self, time: float, activation_time: float, hazard_occurred: bool
    ) -> bool:
        """Decide whether an active attack should stop at ``time``."""
        raise NotImplementedError

    # -- helpers shared by the concrete strategies -------------------------

    @staticmethod
    def _resolve_steer_direction(
        spec: AttackSpec,
        matches: Sequence[ContextMatch],
        rng: Optional[np.random.Generator],
        default: int,
    ) -> int:
        """Pick the steering ramp direction for this activation."""
        if not spec.corrupts_steering:
            return 0
        if spec.steer_direction != 0:
            return spec.steer_direction
        for match in matches:
            if match.action is ControlAction.STEER_LEFT:
                return +1
            if match.action is ControlAction.STEER_RIGHT:
                return -1
        if default != 0:
            return default
        if rng is not None:
            return int(rng.choice((-1, +1)))
        return -1


class NoAttackStrategy(AttackStrategy):
    """Baseline: never attack (the paper's "No Attacks" row)."""

    name = "No-Attack"
    corruption_mode = CorruptionMode.FIXED
    context_triggered = False

    def should_activate(self, time, spec, matches) -> ActivationDecision:
        return ActivationDecision(activate=False)

    def should_deactivate(self, time, activation_time, hazard_occurred) -> bool:
        return True


class RandomStartDurationStrategy(AttackStrategy):
    """Random start time and random duration, fixed injection values."""

    name = "Random-ST+DUR"
    corruption_mode = CorruptionMode.FIXED
    context_triggered = False

    def __init__(
        self,
        start_range: Sequence[float] = (5.0, 40.0),
        duration_range: Sequence[float] = (0.5, 2.5),
    ):
        self.start_range = tuple(start_range)
        self.duration_range = tuple(duration_range)
        self.start_time: Optional[float] = None
        self.duration: Optional[float] = None
        self._steer_default = 0

    def prepare(self, rng: np.random.Generator) -> None:
        self.start_time = float(rng.uniform(*self.start_range))
        self.duration = float(rng.uniform(*self.duration_range))
        self._steer_default = int(rng.choice((-1, +1)))

    def should_activate(self, time, spec, matches) -> ActivationDecision:
        if self.start_time is None:
            raise RuntimeError("strategy used before prepare()")
        if time < self.start_time:
            return ActivationDecision(activate=False)
        direction = self._resolve_steer_direction(spec, matches, None, self._steer_default)
        return ActivationDecision(activate=True, steer_direction=direction, reason="timer")

    def should_deactivate(self, time, activation_time, hazard_occurred) -> bool:
        return time - activation_time >= self.duration


class RandomStartStrategy(RandomStartDurationStrategy):
    """Random start time, fixed 2.5 s duration (the driver reaction time)."""

    name = "Random-ST"

    def __init__(self, start_range: Sequence[float] = (5.0, 40.0), duration: float = 2.5):
        super().__init__(start_range=start_range, duration_range=(duration, duration))

    def prepare(self, rng: np.random.Generator) -> None:
        super().prepare(rng)
        self.duration = self.duration_range[0]


class RandomDurationStrategy(AttackStrategy):
    """Context-aware start time, random duration, fixed injection values."""

    name = "Random-DUR"
    corruption_mode = CorruptionMode.FIXED
    context_triggered = True

    def __init__(self, duration_range: Sequence[float] = (0.5, 2.5)):
        self.duration_range = tuple(duration_range)
        self.duration: Optional[float] = None
        self._steer_default = 0

    def prepare(self, rng: np.random.Generator) -> None:
        self.duration = float(rng.uniform(*self.duration_range))
        self._steer_default = int(rng.choice((-1, +1)))

    def should_activate(self, time, spec, matches) -> ActivationDecision:
        if self.duration is None:
            raise RuntimeError("strategy used before prepare()")
        relevant = [match for match in matches if match.action in spec.actions]
        if not relevant:
            return ActivationDecision(activate=False)
        direction = self._resolve_steer_direction(spec, relevant, None, self._steer_default)
        return ActivationDecision(
            activate=True,
            steer_direction=direction,
            reason=f"rule{relevant[0].rule.rule_id}",
        )

    def should_deactivate(self, time, activation_time, hazard_occurred) -> bool:
        return time - activation_time >= self.duration


class ScheduledAttackStrategy(RandomStartDurationStrategy):
    """A fully determined (start time, duration) attack schedule.

    The degenerate case of Random-ST+DUR where both sampling ranges have
    collapsed to a point: :meth:`prepare` still draws from the run RNG
    (so the steering-direction tie-break stays seed-deterministic), but
    the schedule itself is exactly the constructor arguments.  This is
    the decode target of the attack-parameter search
    (:mod:`repro.search.space`), where an optimizer proposes concrete
    schedules instead of sampling them.
    """

    name = "Scheduled"

    def __init__(self, start_time: float, duration: float):
        if start_time < 0.0:
            raise ValueError("scheduled start_time must be non-negative")
        if duration <= 0.0:
            raise ValueError("scheduled duration must be positive")
        super().__init__(
            start_range=(start_time, start_time), duration_range=(duration, duration)
        )


class ContextAwareStrategy(AttackStrategy):
    """The paper's Context-Aware strategy.

    Starts the attack when a critical context for the attack type is
    matched, keeps it active until a hazard occurs (or a cap is reached),
    and injects strategically chosen values that evade the ADAS safety
    checks and the driver's perception.
    """

    name = "Context-Aware"
    corruption_mode = CorruptionMode.STRATEGIC
    context_triggered = True

    def __init__(self, max_duration: float = 12.0, stop_on_hazard: bool = True):
        self.max_duration = max_duration
        self.stop_on_hazard = stop_on_hazard
        self._steer_default = 0

    def prepare(self, rng: np.random.Generator) -> None:
        self._steer_default = int(rng.choice((-1, +1)))

    def should_activate(self, time, spec, matches) -> ActivationDecision:
        relevant = [match for match in matches if match.action in spec.actions]
        if not relevant:
            return ActivationDecision(activate=False)
        direction = self._resolve_steer_direction(spec, relevant, None, self._steer_default)
        return ActivationDecision(
            activate=True,
            steer_direction=direction,
            reason=f"rule{relevant[0].rule.rule_id}",
        )

    def should_deactivate(self, time, activation_time, hazard_occurred) -> bool:
        if self.stop_on_hazard and hazard_occurred:
            return True
        return time - activation_time >= self.max_duration


def strategy_by_name(name: str) -> AttackStrategy:
    """Construct a fresh strategy instance from its Table III name."""
    factories = {
        NoAttackStrategy.name: NoAttackStrategy,
        RandomStartDurationStrategy.name: RandomStartDurationStrategy,
        RandomStartStrategy.name: RandomStartStrategy,
        RandomDurationStrategy.name: RandomDurationStrategy,
        ContextAwareStrategy.name: ContextAwareStrategy,
    }
    try:
        return factories[name]()
    except KeyError:
        known = ", ".join(sorted(factories))
        raise KeyError(f"unknown strategy {name!r}; known strategies: {known}") from None

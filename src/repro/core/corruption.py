"""Strategic value corruption (Section III-C, step 4; Eq. 1–3).

Given the attack type and the current (attacker-estimated) vehicle state,
this module computes the corrupted actuator command values.  Two modes are
supported:

* ``FIXED`` — inject the maximum value OpenPilot's output stage allows
  (Table III "Fixed": 2.4 m/s², −4 m/s², 0.5°/frame).  Effective, but the
  values exceed the ISO-style limits a driver (or Panda) would treat as
  anomalous.
* ``STRATEGIC`` — solve the paper's constrained optimisation (Eq. 1):
  stay within the tighter strategic limits (2 m/s², −3.5 m/s²,
  0.25°/frame), and additionally keep the Kalman-predicted next-step speed
  below ``1.1 × v_cruise`` so the over-speed anomaly never triggers.
"""

from dataclasses import dataclass
from enum import Enum

from repro.adas.limits import ISO_SAFETY_LIMITS, OPENPILOT_LIMITS, SafetyLimits
from repro.core.attack_types import AttackSpec
from repro.core.kalman import ScalarKalmanFilter
from repro.sim.units import DT, clamp
from repro.sim.vehicle import ActuatorCommand


class CorruptionMode(Enum):
    """How attack values are chosen."""

    FIXED = "fixed"
    STRATEGIC = "strategic"


@dataclass(frozen=True)
class CorruptionLimits:
    """The limit sets used by the two corruption modes."""

    fixed: SafetyLimits = OPENPILOT_LIMITS
    strategic: SafetyLimits = ISO_SAFETY_LIMITS


class ValueCorruptor:
    """Computes corrupted actuator commands for an active attack."""

    def __init__(
        self,
        mode: CorruptionMode,
        limits: CorruptionLimits = CorruptionLimits(),
        dt: float = DT,
    ):
        self.mode = mode
        self.limits = limits
        self.dt = dt
        self.speed_filter = ScalarKalmanFilter()

    @property
    def active_limits(self) -> SafetyLimits:
        """The limit set the current mode injects at."""
        return self.limits.strategic if self.mode is CorruptionMode.STRATEGIC else self.limits.fixed

    def observe_speed(self, measured_speed: float) -> None:
        """Feed the attacker's speed measurement into the Kalman filter."""
        self.speed_filter.update(measured_speed)

    def corrupt(
        self,
        command: ActuatorCommand,
        spec: AttackSpec,
        steer_direction: int,
        previous_steering_deg: float,
        cruise_speed: float,
    ) -> ActuatorCommand:
        """Return the corrupted command for one control cycle.

        Args:
            command: The legitimate command produced by the ADAS.
            spec: The attack type specification.
            steer_direction: +1 to ramp the steering left, -1 right, 0 for
                no steering corruption (resolved by the attack engine for
                combined attacks).
            previous_steering_deg: The steering command emitted on the
                previous cycle (attack ramps are relative to it).
            cruise_speed: The set cruise speed (m/s) for the over-speed
                constraint of Eq. 1.
        """
        limits = self.active_limits
        accel = command.accel
        brake = command.brake
        steering = command.steering_angle_deg

        if spec.corrupt_accel:
            accel = limits.accel_max
            brake = 0.0
            if self.mode is CorruptionMode.STRATEGIC and self.speed_filter.initialized:
                accel = self._bounded_accel(accel, cruise_speed)
        if spec.corrupt_brake:
            brake = -limits.brake_min
            accel = 0.0

        if steer_direction != 0:
            steering = self._corrupt_steering(steer_direction, previous_steering_deg, limits)

        return ActuatorCommand(accel=accel, brake=brake, steering_angle_deg=steering)

    @staticmethod
    def _corrupt_steering(direction: int, previous_deg: float, limits) -> float:
        """Steering corruption: replace the lane-keeping command.

        Table III specifies ``limitsteer`` (0.5° fixed / 0.25° strategic) as
        the injected steering value.  The attack drives the steering command
        to ``±limitsteer`` — i.e. it drops the ALC's lane-keeping correction
        and holds a small constant bias in the chosen direction — moving
        there at no more than ``limitsteer`` per frame so the per-frame
        change stays inside the rate limit checked by OpenPilot/Panda
        (the ``Δsteering < limitsteer`` constraint of Eq. 1).
        """
        target = direction * limits.steer_delta_max_deg
        step = clamp(target - previous_deg, -limits.steer_delta_max_deg, limits.steer_delta_max_deg)
        return previous_deg + step

    # Safety margin (m/s) kept below the over-speed threshold, and the gain
    # (1/s) with which the injected acceleration is ramped down as the
    # predicted speed approaches the cap.  Without the margin the realised
    # speed would overshoot the cap by the actuator lag and the driver's
    # over-speed anomaly check would trigger.
    SPEED_CAP_MARGIN = 0.5
    SPEED_APPROACH_GAIN = 1.5

    def _bounded_accel(self, accel: float, cruise_speed: float) -> float:
        """Largest acceleration keeping the predicted speed under the cap."""
        speed_cap = (
            self.active_limits.cruise_overspeed_factor * cruise_speed - self.SPEED_CAP_MARGIN
        )
        predicted = self.speed_filter.predicted_speed(accel, self.dt)
        if predicted <= speed_cap - 1.0:
            return accel
        headroom_accel = self.SPEED_APPROACH_GAIN * (speed_cap - predicted)
        return clamp(headroom_accel, 0.0, accel)

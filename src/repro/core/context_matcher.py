"""Context matcher (Section III-C, step 3).

Checks the attacker's inferred safety context against the safety context
table and reports which rules — and therefore which unsafe control
actions — are currently applicable.
"""

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.attack_types import ControlAction
from repro.core.context_table import ContextRule, ContextTable
from repro.core.state_inference import InferredContext


@dataclass(frozen=True)
class ContextMatch:
    """A matched context rule at a specific time."""

    rule: ContextRule
    time: float

    @property
    def action(self) -> ControlAction:
        return self.rule.unsafe_action

    @property
    def hazard(self) -> str:
        return self.rule.hazard


class ContextMatcher:
    """Evaluates every rule of a context table against the current context."""

    def __init__(self, table: ContextTable, min_speed: float = 1.0):
        """Args:
            table: The safety context table.
            min_speed: Contexts are not matched below this speed (m/s); an
                almost-stationary vehicle offers no attack opportunity.
        """
        self.table = table
        self.min_speed = min_speed
        self.match_history: List[ContextMatch] = []

    def match(self, context: InferredContext) -> List[ContextMatch]:
        """Return all rules matched by ``context`` (may be empty)."""
        if not context.valid or context.v_ego < self.min_speed:
            return []
        matches = [
            ContextMatch(rule=rule, time=context.time)
            for rule in self.table
            if rule.condition(context)
        ]
        self.match_history.extend(matches)
        return matches

    def match_for_actions(
        self, context: InferredContext, actions: Sequence[ControlAction]
    ) -> Optional[ContextMatch]:
        """Return the first match whose unsafe action is one of ``actions``."""
        for match in self.match(context):
            if match.action in actions:
                return match
        return None

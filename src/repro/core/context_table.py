"""The safety context table (Table I of the paper).

Each rule describes a *system context* (a predicate over the inferred
vehicle state) under which a specific high-level control action is unsafe
and leads to a hazard.  The table is derived from control-theoretic hazard
analysis (STPA) of a generic ALC+ACC ADAS, so it applies to any ADAS with
the same functional specification; the attacker only needs to choose the
threshold parameters (``t_safe``, ``beta1``, ``beta2``) from domain
knowledge.
"""

from dataclasses import dataclass
from typing import Callable, List

from repro.core.attack_types import ControlAction
from repro.core.state_inference import InferredContext
from repro.sim.units import mph_to_ms


@dataclass(frozen=True)
class ContextRule:
    """One row of the safety context table.

    Attributes:
        rule_id: Row number (1-based, as in Table I).
        description: Human-readable rendering of the system context.
        condition: Predicate over the inferred context.
        unsafe_action: The control action that is unsafe in this context.
        hazard: The hazard (H1/H2/H3) the unsafe action may lead to.
    """

    rule_id: int
    description: str
    condition: Callable[[InferredContext], bool]
    unsafe_action: ControlAction
    hazard: str


class ContextTable:
    """An ordered collection of :class:`ContextRule` rows."""

    def __init__(self, rules: List[ContextRule]):
        if not rules:
            raise ValueError("a context table needs at least one rule")
        self.rules = list(rules)

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self):
        return iter(self.rules)

    def rules_for_action(self, action: ControlAction) -> List[ContextRule]:
        """All rules whose unsafe control action is ``action``."""
        return [rule for rule in self.rules if rule.unsafe_action is action]

    def format(self) -> str:
        """Render the table as text (used by the quickstart example)."""
        lines = ["Rule | System Context | Unsafe Control Action | Potential Hazard"]
        lines.append("-" * 78)
        for rule in self.rules:
            lines.append(
                f"{rule.rule_id:>4} | {rule.description:<38} | "
                f"{rule.unsafe_action.name:<21} | {rule.hazard}"
            )
        return "\n".join(lines)


def default_context_table(
    t_safe: float = 2.6,
    beta1: float = mph_to_ms(25.0),
    beta2: float = mph_to_ms(25.0),
    edge_threshold: float = 0.1,
) -> ContextTable:
    """Build Table I with the given threshold parameters.

    Args:
        t_safe: Safe headway time, seconds (paper: in [2, 3] s).
        beta1: Minimum speed for the deceleration hazard context, m/s
            (paper: 20–35 mph).
        beta2: Minimum speed for the out-of-lane hazard contexts, m/s.
        edge_threshold: Distance to a lane edge (m) below which steering
            towards that edge is unsafe.
    """

    def rule1(ctx: InferredContext) -> bool:
        return ctx.has_lead and ctx.headway_time <= t_safe and ctx.relative_speed > 0.0

    def rule2(ctx: InferredContext) -> bool:
        no_closing_lead = (not ctx.has_lead) or (
            ctx.headway_time > t_safe and ctx.relative_speed <= 0.0
        )
        return no_closing_lead and ctx.v_ego > beta1

    def rule3(ctx: InferredContext) -> bool:
        return ctx.d_left <= edge_threshold and ctx.v_ego > beta2

    def rule4(ctx: InferredContext) -> bool:
        return ctx.d_right <= edge_threshold and ctx.v_ego > beta2

    rules = [
        ContextRule(
            rule_id=1,
            description=f"HWT <= {t_safe:.1f}s and RS > 0",
            condition=rule1,
            unsafe_action=ControlAction.ACCELERATION,
            hazard="H1",
        ),
        ContextRule(
            rule_id=2,
            description=f"HWT > {t_safe:.1f}s and RS <= 0 and v > {beta1:.1f}m/s",
            condition=rule2,
            unsafe_action=ControlAction.DECELERATION,
            hazard="H2",
        ),
        ContextRule(
            rule_id=3,
            description=f"d_left <= {edge_threshold:.2f}m and v > {beta2:.1f}m/s",
            condition=rule3,
            unsafe_action=ControlAction.STEER_LEFT,
            hazard="H3",
        ),
        ContextRule(
            rule_id=4,
            description=f"d_right <= {edge_threshold:.2f}m and v > {beta2:.1f}m/s",
            condition=rule4,
            unsafe_action=ControlAction.STEER_RIGHT,
            hazard="H3",
        ),
    ]
    return ContextTable(rules)

"""Scalar Kalman filter for ego-speed prediction (Eq. 2–3 of the paper).

The strategic value corruption needs to predict the vehicle speed one
control step ahead so that the corrupted acceleration never pushes the
speed above ``1.1 × v_cruise`` (which the driver — and many stock ADAS
monitors — would notice).  The paper uses a one-dimensional Kalman filter:
predict with the constant-acceleration model, then correct with the
measured speed at the next step.
"""

from dataclasses import dataclass


@dataclass
class ScalarKalmanFilter:
    """One-dimensional Kalman filter with a constant-acceleration model.

    Attributes:
        process_noise: Variance added by the prediction step (models the
            mismatch between commanded and realised acceleration).
        measurement_noise: Variance of the speed measurement.
        estimate: Current state estimate (speed, m/s).
        variance: Current estimate variance.
    """

    process_noise: float = 0.05
    measurement_noise: float = 0.01
    estimate: float = 0.0
    variance: float = 1.0
    initialized: bool = False
    gain: float = 0.0

    def reset(self, value: float, variance: float = 1.0) -> None:
        """Re-initialise the filter at ``value``."""
        self.estimate = value
        self.variance = variance
        self.initialized = True

    def predict(self, accel: float, dt: float) -> float:
        """Predict the next-step estimate under ``accel`` (Eq. 2)."""
        if not self.initialized:
            raise RuntimeError("Kalman filter used before initialisation")
        self.estimate = self.estimate + accel * dt
        self.variance = self.variance + self.process_noise
        return self.estimate

    def update(self, measurement: float) -> float:
        """Correct the estimate with a measurement (Eq. 3).

        The Kalman gain is ``K = P / (P + R)``; the paper writes the same
        correction as ``v̂ₜ₊₁ = v̂ₜ₊₁|ₜ + Kₜ (vₜ₊₁ − v̂ₜ₊₁|ₜ)``.
        """
        if not self.initialized:
            self.reset(measurement)
            return self.estimate
        self.gain = self.variance / (self.variance + self.measurement_noise)
        self.estimate = self.estimate + self.gain * (measurement - self.estimate)
        self.variance = (1.0 - self.gain) * self.variance
        return self.estimate

    def predicted_speed(self, accel: float, dt: float) -> float:
        """Return the speed predicted ``dt`` ahead without mutating state."""
        if not self.initialized:
            raise RuntimeError("Kalman filter used before initialisation")
        return self.estimate + accel * dt

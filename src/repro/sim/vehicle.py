"""Ego vehicle model: kinematic bicycle in the road-aligned frame.

The attacks in the paper act on actuator commands (gas, brake, steering
angle); what the reproduction needs from the vehicle model is a faithful
command-to-motion path — actuator lag, steering ratio, physical
acceleration limits — and accurate relative kinematics with respect to
the lead vehicle and the lane.  A kinematic bicycle model integrated at
100 Hz provides exactly that.
"""

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.sim.road import Road, curvature_columns
from repro.sim.units import DEG_TO_RAD, DT, deg_to_rad

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.batch import BatchState


@dataclass(frozen=True)
class VehicleParams:
    """Physical parameters of a mid-size sedan (Honda Civic-like)."""

    length: float = 4.6            # m
    width: float = 1.8             # m
    wheelbase: float = 2.7         # m
    steering_ratio: float = 15.3   # steering wheel deg per road wheel deg
    max_steering_wheel_deg: float = 450.0
    max_accel_physical: float = 4.0     # m/s^2, engine limit
    max_decel_physical: float = -9.0    # m/s^2, friction limit
    accel_time_constant: float = 0.25   # s, first-order lag of longitudinal actuators
    steer_time_constant: float = 0.10   # s, first-order lag of the EPS
    # Maximum steering-wheel rate the EPS delivers under its torque cap.
    # This bounds how quickly *any* commanded angle — legitimate or
    # attacked — is realised by the car.
    max_steer_rate_deg_s: float = 400.0


@dataclass
class ActuatorCommand:
    """Low-level command decoded from the CAN bus each control cycle.

    Attributes:
        accel: Requested acceleration from the gas actuator, m/s^2 (>= 0).
        brake: Requested braking deceleration magnitude, m/s^2 (>= 0).
        steering_angle_deg: Requested steering wheel angle, degrees
            (positive = left).
    """

    accel: float = 0.0
    brake: float = 0.0
    steering_angle_deg: float = 0.0

    @property
    def net_accel(self) -> float:
        """Net longitudinal acceleration request (gas minus brake)."""
        return self.accel - self.brake


@dataclass
class VehicleState:
    """Dynamic state of the ego vehicle in the Frenet frame."""

    s: float = 0.0                     # arc length along lane centreline, m
    d: float = 0.0                     # lateral offset from lane centre, m (+left)
    heading_error: float = 0.0         # heading relative to road tangent, rad
    speed: float = 0.0                 # m/s
    accel: float = 0.0                 # m/s^2, realised
    steering_wheel_deg: float = 0.0    # realised steering wheel angle
    yaw_rate: float = 0.0              # rad/s


class EgoVehicle:
    """Kinematic bicycle model with first-order actuator dynamics."""

    def __init__(
        self,
        road: Road,
        params: VehicleParams = VehicleParams(),
        initial_speed: float = 0.0,
        initial_s: float = 0.0,
        initial_d: float = 0.0,
    ):
        self.road = road
        self.params = params
        self.state = VehicleState(s=initial_s, d=initial_d, speed=initial_speed)
        # Precomputed half-dimensions: the geometry properties run several
        # times per 10 ms step (collision, lane and hazard monitors).
        self._half_length = params.length / 2.0
        self._half_width = params.width / 2.0

    # -- geometry helpers -------------------------------------------------

    @property
    def front_s(self) -> float:
        """Arc length of the front bumper."""
        return self.state.s + self._half_length

    @property
    def rear_s(self) -> float:
        """Arc length of the rear bumper."""
        return self.state.s - self._half_length

    @property
    def left_edge(self) -> float:
        """Lateral offset of the left side of the body."""
        return self.state.d + self._half_width

    @property
    def right_edge(self) -> float:
        """Lateral offset of the right side of the body."""
        return self.state.d - self._half_width

    # -- dynamics ---------------------------------------------------------

    def step(
        self,
        command: ActuatorCommand,
        dt: float = DT,
        disturbance_curvature: float = 0.0,
    ) -> VehicleState:
        """Advance the vehicle by one control period under ``command``.

        Args:
            command: Actuator command to execute.
            dt: Integration step, s.
            disturbance_curvature: Additional path curvature (1/m) imposed
                by the environment — road crown, crosswind, tyre pull.  A
                slowly varying disturbance is what makes a purely
                proportional lane-centering controller ride (and cross)
                lane lines, reproducing the paper's Observation 1.
        """
        params = self.params
        state = self.state

        # Longitudinal: first-order lag towards the net requested accel,
        # clipped to the physically achievable envelope.  (The clamps are
        # inlined — this runs 100 times per simulated second.)
        accel_target = command.accel - command.brake
        if accel_target > params.max_accel_physical:
            accel_target = params.max_accel_physical
        elif accel_target < params.max_decel_physical:
            accel_target = params.max_decel_physical
        alpha = dt / (params.accel_time_constant + dt)
        state.accel += alpha * (accel_target - state.accel)
        new_speed = state.speed + state.accel * dt
        if new_speed < 0.0:
            new_speed = 0.0
            state.accel = 0.0
        state.speed = new_speed

        # Steering: slew-rate limited first-order lag towards the command.
        steer_cmd = command.steering_angle_deg
        if steer_cmd > params.max_steering_wheel_deg:
            steer_cmd = params.max_steering_wheel_deg
        elif steer_cmd < -params.max_steering_wheel_deg:
            steer_cmd = -params.max_steering_wheel_deg
        beta = dt / (params.steer_time_constant + dt)
        desired_change = beta * (steer_cmd - state.steering_wheel_deg)
        max_change = params.max_steer_rate_deg_s * dt
        if desired_change > max_change:
            desired_change = max_change
        elif desired_change < -max_change:
            desired_change = -max_change
        state.steering_wheel_deg += desired_change

        # Kinematic bicycle in the Frenet frame.
        road_wheel_angle = deg_to_rad(state.steering_wheel_deg / params.steering_ratio)
        vehicle_curvature = math.tan(road_wheel_angle) / params.wheelbase + disturbance_curvature
        state.yaw_rate = state.speed * vehicle_curvature

        road_curvature = self.road.curvature(state.s)
        denom = 1.0 - state.d * road_curvature
        if abs(denom) < 1e-3:
            denom = math.copysign(1e-3, denom)
        s_dot = state.speed * math.cos(state.heading_error) / denom
        d_dot = state.speed * math.sin(state.heading_error)
        heading_error_dot = state.yaw_rate - road_curvature * s_dot

        state.s += s_dot * dt
        state.d += d_dot * dt
        state.heading_error += heading_error_dot * dt
        # Keep the heading error in (-pi, pi] to avoid unbounded growth
        # after a spin-out.
        state.heading_error = math.atan2(
            math.sin(state.heading_error), math.cos(state.heading_error)
        )
        return state


def step_ego_columns(state: "BatchState", n: int) -> None:
    """Vectorised :meth:`EgoVehicle.step` over the first ``n`` batch rows.

    Reads the actuator-command columns (``ex_*``) and physics columns
    (``ph_*``) of :class:`repro.kernel.batch.BatchState` and advances the
    physics columns in place, bit-identically to the scalar bicycle model.
    ``np.sin``/``np.cos``/``np.copysign`` match their ``math`` twins on
    this platform, but ``np.tan``/``np.arctan2`` do not — those two stay
    per-row ``math`` loops so the golden replays hold to the last bit.
    """
    accel = state.ph_accel[:n]
    speed = state.ph_speed[:n]
    steer = state.ph_steer[:n]
    s = state.ph_s[:n]
    d = state.ph_d[:n]
    heading = state.ph_heading[:n]
    yaw = state.ph_yaw[:n]
    w0 = state.w0[:n]
    w1 = state.w1[:n]
    w2 = state.w2[:n]
    w3 = state.w3[:n]
    w4 = state.w4[:n]
    w5 = state.w5[:n]
    w6 = state.w6[:n]
    w7 = state.w7[:n]

    # Longitudinal: first-order lag towards the net requested accel,
    # clipped to the physically achievable envelope.
    np.subtract(state.ex_accel[:n], state.ex_brake[:n], out=w0)
    np.minimum(w0, state.p_max_accel_phys[:n], out=w0)
    np.maximum(w0, state.p_max_decel_phys[:n], out=w0)
    np.subtract(w0, accel, out=w0)
    np.multiply(state.p_accel_alpha[:n], w0, out=w0)
    np.add(accel, w0, out=accel)
    np.multiply(accel, DT, out=w0)
    np.add(speed, w0, out=speed)
    stopped = speed < 0.0
    speed[stopped] = 0.0
    accel[stopped] = 0.0

    # Steering: slew-rate limited first-order lag towards the command.
    np.minimum(state.ex_steer[:n], state.p_max_steer_deg[:n], out=w1)
    np.negative(state.p_max_steer_deg[:n], out=w2)
    np.maximum(w1, w2, out=w1)
    np.subtract(w1, steer, out=w1)
    np.multiply(state.p_steer_beta[:n], w1, out=w1)
    np.minimum(w1, state.p_steer_max_change[:n], out=w1)
    np.negative(state.p_steer_max_change[:n], out=w2)
    np.maximum(w1, w2, out=w1)
    np.add(steer, w1, out=steer)

    # Kinematic bicycle curvature; ``math.tan`` row loop (see docstring).
    np.divide(steer, state.p_steer_ratio[:n], out=w1)
    np.multiply(w1, DEG_TO_RAD, out=w1)
    tan = math.tan
    for j in range(n):
        w2[j] = tan(w1[j])
    np.divide(w2, state.p_wheelbase[:n], out=w2)
    # Environmental disturbance curvature.  The scalar path returns an
    # exact +0.0 when the amplitude is zero, so mask those rows after the
    # vectorised sin (which could produce -0.0 via amp * sin).
    amp = state.p_dist_amp[:n]
    np.multiply(state.p_dist_omega[:n], state.ph_time[:n], out=w3)
    np.add(w3, state.p_dist_phase[:n], out=w3)
    np.sin(w3, out=w3)
    np.multiply(amp, w3, out=w3)
    w3[amp == 0.0] = 0.0
    np.add(w2, w3, out=w2)
    np.multiply(speed, w2, out=yaw)

    # Frenet derivatives at the pre-update arc length / offset / heading.
    curvature_columns(
        s,
        state.p_curve_start[:n],
        state.p_curve_transition[:n],
        state.p_curvature_max[:n],
        out=w3,
    )
    np.multiply(d, w3, out=w4)
    np.subtract(1.0, w4, out=w4)
    small = np.abs(w4) < 1e-3
    if small.any():
        w4[small] = np.copysign(1e-3, w4[small])
    np.cos(heading, out=w5)
    np.sin(heading, out=w6)
    np.multiply(speed, w5, out=w5)
    np.divide(w5, w4, out=w5)        # s_dot
    np.multiply(speed, w6, out=w6)   # d_dot
    np.multiply(w3, w5, out=w7)
    np.subtract(yaw, w7, out=w7)     # heading_error_dot

    np.multiply(w5, DT, out=w5)
    np.add(s, w5, out=s)
    np.multiply(w6, DT, out=w6)
    np.add(d, w6, out=d)
    np.multiply(w7, DT, out=w7)
    np.add(heading, w7, out=heading)
    # Wrap into (-pi, pi]; ``math.atan2`` row loop (np.arctan2 differs).
    np.sin(heading, out=w5)
    np.cos(heading, out=w6)
    atan2 = math.atan2
    for j in range(n):
        heading[j] = atan2(w5[j], w6[j])

"""Ego vehicle model: kinematic bicycle in the road-aligned frame.

The attacks in the paper act on actuator commands (gas, brake, steering
angle); what the reproduction needs from the vehicle model is a faithful
command-to-motion path — actuator lag, steering ratio, physical
acceleration limits — and accurate relative kinematics with respect to
the lead vehicle and the lane.  A kinematic bicycle model integrated at
100 Hz provides exactly that.
"""

import math
from dataclasses import dataclass

from repro.sim.road import Road
from repro.sim.units import DT, deg_to_rad


@dataclass(frozen=True)
class VehicleParams:
    """Physical parameters of a mid-size sedan (Honda Civic-like)."""

    length: float = 4.6            # m
    width: float = 1.8             # m
    wheelbase: float = 2.7         # m
    steering_ratio: float = 15.3   # steering wheel deg per road wheel deg
    max_steering_wheel_deg: float = 450.0
    max_accel_physical: float = 4.0     # m/s^2, engine limit
    max_decel_physical: float = -9.0    # m/s^2, friction limit
    accel_time_constant: float = 0.25   # s, first-order lag of longitudinal actuators
    steer_time_constant: float = 0.10   # s, first-order lag of the EPS
    # Maximum steering-wheel rate the EPS delivers under its torque cap.
    # This bounds how quickly *any* commanded angle — legitimate or
    # attacked — is realised by the car.
    max_steer_rate_deg_s: float = 400.0


@dataclass
class ActuatorCommand:
    """Low-level command decoded from the CAN bus each control cycle.

    Attributes:
        accel: Requested acceleration from the gas actuator, m/s^2 (>= 0).
        brake: Requested braking deceleration magnitude, m/s^2 (>= 0).
        steering_angle_deg: Requested steering wheel angle, degrees
            (positive = left).
    """

    accel: float = 0.0
    brake: float = 0.0
    steering_angle_deg: float = 0.0

    @property
    def net_accel(self) -> float:
        """Net longitudinal acceleration request (gas minus brake)."""
        return self.accel - self.brake


@dataclass
class VehicleState:
    """Dynamic state of the ego vehicle in the Frenet frame."""

    s: float = 0.0                     # arc length along lane centreline, m
    d: float = 0.0                     # lateral offset from lane centre, m (+left)
    heading_error: float = 0.0         # heading relative to road tangent, rad
    speed: float = 0.0                 # m/s
    accel: float = 0.0                 # m/s^2, realised
    steering_wheel_deg: float = 0.0    # realised steering wheel angle
    yaw_rate: float = 0.0              # rad/s


class EgoVehicle:
    """Kinematic bicycle model with first-order actuator dynamics."""

    def __init__(
        self,
        road: Road,
        params: VehicleParams = VehicleParams(),
        initial_speed: float = 0.0,
        initial_s: float = 0.0,
        initial_d: float = 0.0,
    ):
        self.road = road
        self.params = params
        self.state = VehicleState(s=initial_s, d=initial_d, speed=initial_speed)
        # Precomputed half-dimensions: the geometry properties run several
        # times per 10 ms step (collision, lane and hazard monitors).
        self._half_length = params.length / 2.0
        self._half_width = params.width / 2.0

    # -- geometry helpers -------------------------------------------------

    @property
    def front_s(self) -> float:
        """Arc length of the front bumper."""
        return self.state.s + self._half_length

    @property
    def rear_s(self) -> float:
        """Arc length of the rear bumper."""
        return self.state.s - self._half_length

    @property
    def left_edge(self) -> float:
        """Lateral offset of the left side of the body."""
        return self.state.d + self._half_width

    @property
    def right_edge(self) -> float:
        """Lateral offset of the right side of the body."""
        return self.state.d - self._half_width

    # -- dynamics ---------------------------------------------------------

    def step(
        self,
        command: ActuatorCommand,
        dt: float = DT,
        disturbance_curvature: float = 0.0,
    ) -> VehicleState:
        """Advance the vehicle by one control period under ``command``.

        Args:
            command: Actuator command to execute.
            dt: Integration step, s.
            disturbance_curvature: Additional path curvature (1/m) imposed
                by the environment — road crown, crosswind, tyre pull.  A
                slowly varying disturbance is what makes a purely
                proportional lane-centering controller ride (and cross)
                lane lines, reproducing the paper's Observation 1.
        """
        params = self.params
        state = self.state

        # Longitudinal: first-order lag towards the net requested accel,
        # clipped to the physically achievable envelope.  (The clamps are
        # inlined — this runs 100 times per simulated second.)
        accel_target = command.accel - command.brake
        if accel_target > params.max_accel_physical:
            accel_target = params.max_accel_physical
        elif accel_target < params.max_decel_physical:
            accel_target = params.max_decel_physical
        alpha = dt / (params.accel_time_constant + dt)
        state.accel += alpha * (accel_target - state.accel)
        new_speed = state.speed + state.accel * dt
        if new_speed < 0.0:
            new_speed = 0.0
            state.accel = 0.0
        state.speed = new_speed

        # Steering: slew-rate limited first-order lag towards the command.
        steer_cmd = command.steering_angle_deg
        if steer_cmd > params.max_steering_wheel_deg:
            steer_cmd = params.max_steering_wheel_deg
        elif steer_cmd < -params.max_steering_wheel_deg:
            steer_cmd = -params.max_steering_wheel_deg
        beta = dt / (params.steer_time_constant + dt)
        desired_change = beta * (steer_cmd - state.steering_wheel_deg)
        max_change = params.max_steer_rate_deg_s * dt
        if desired_change > max_change:
            desired_change = max_change
        elif desired_change < -max_change:
            desired_change = -max_change
        state.steering_wheel_deg += desired_change

        # Kinematic bicycle in the Frenet frame.
        road_wheel_angle = deg_to_rad(state.steering_wheel_deg / params.steering_ratio)
        vehicle_curvature = math.tan(road_wheel_angle) / params.wheelbase + disturbance_curvature
        state.yaw_rate = state.speed * vehicle_curvature

        road_curvature = self.road.curvature(state.s)
        denom = 1.0 - state.d * road_curvature
        if abs(denom) < 1e-3:
            denom = math.copysign(1e-3, denom)
        s_dot = state.speed * math.cos(state.heading_error) / denom
        d_dot = state.speed * math.sin(state.heading_error)
        heading_error_dot = state.yaw_rate - road_curvature * s_dot

        state.s += s_dot * dt
        state.d += d_dot * dt
        state.heading_error += heading_error_dot * dt
        # Keep the heading error in (-pi, pi] to avoid unbounded growth
        # after a spin-out.
        state.heading_error = math.atan2(
            math.sin(state.heading_error), math.cos(state.heading_error)
        )
        return state

"""Driving scenarios S1–S4 from the paper's evaluation (Section IV-A).

All four scenarios start with the ego vehicle cruising at 60 mph and a
lead vehicle 50, 70 or 100 m ahead:

* **S1** — lead cruises at 35 mph.
* **S2** — lead cruises at 50 mph.
* **S3** — lead slows down from 50 mph to 35 mph.
* **S4** — lead accelerates from 35 mph to 50 mph.
"""

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.sim.actors import LeadBehavior
from repro.sim.road import RoadSpec
from repro.sim.units import mph_to_ms


@dataclass(frozen=True)
class Scenario:
    """A fully parameterised driving scenario.

    Speeds are stored in m/s; use :func:`repro.sim.units.mph_to_ms` when
    constructing scenarios from the paper's mph figures.
    """

    name: str
    description: str
    ego_initial_speed: float
    cruise_speed: float
    lead_initial_speed: float
    lead_behavior: LeadBehavior
    lead_target_speed: Optional[float] = None
    lead_speed_change_rate: float = 1.0
    lead_speed_change_start: float = 10.0
    initial_distance: float = 70.0
    ego_initial_lane_offset: float = -0.3   # m, slightly towards the right guardrail
    with_follower: bool = True
    follower_gap: float = 45.0              # m behind the ego vehicle
    follower_speed: float = mph_to_ms(55.0)
    road: RoadSpec = RoadSpec()

    def with_initial_distance(self, distance: float) -> "Scenario":
        """Return a copy of the scenario with a different initial gap."""
        if distance <= 0:
            raise ValueError("initial distance must be positive")
        return replace(self, initial_distance=distance)


_EGO_SPEED = mph_to_ms(60.0)

SCENARIOS: Dict[str, Scenario] = {
    "S1": Scenario(
        name="S1",
        description="Lead vehicle cruises at 35 mph",
        ego_initial_speed=_EGO_SPEED,
        cruise_speed=_EGO_SPEED,
        lead_initial_speed=mph_to_ms(35.0),
        lead_behavior=LeadBehavior.CRUISE,
    ),
    "S2": Scenario(
        name="S2",
        description="Lead vehicle cruises at 50 mph",
        ego_initial_speed=_EGO_SPEED,
        cruise_speed=_EGO_SPEED,
        lead_initial_speed=mph_to_ms(50.0),
        lead_behavior=LeadBehavior.CRUISE,
    ),
    "S3": Scenario(
        name="S3",
        description="Lead vehicle slows down from 50 mph to 35 mph",
        ego_initial_speed=_EGO_SPEED,
        cruise_speed=_EGO_SPEED,
        lead_initial_speed=mph_to_ms(50.0),
        lead_behavior=LeadBehavior.DECELERATE,
        lead_target_speed=mph_to_ms(35.0),
        lead_speed_change_rate=1.0,
        lead_speed_change_start=12.0,
    ),
    "S4": Scenario(
        name="S4",
        description="Lead vehicle accelerates from 35 mph to 50 mph",
        ego_initial_speed=_EGO_SPEED,
        cruise_speed=_EGO_SPEED,
        lead_initial_speed=mph_to_ms(35.0),
        lead_behavior=LeadBehavior.ACCELERATE,
        lead_target_speed=mph_to_ms(50.0),
        lead_speed_change_rate=1.0,
        lead_speed_change_start=12.0,
    ),
}

# The three initial gaps used in the paper's experiments (metres).
INITIAL_DISTANCES: Tuple[float, ...] = (50.0, 70.0, 100.0)


def build_scenario(name: str, initial_distance: float = 70.0) -> Scenario:
    """Look up scenario ``name`` (``"S1"``..``"S4"``) with the given gap."""
    try:
        base = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r}; known scenarios: {known}") from None
    return base.with_initial_distance(initial_distance)

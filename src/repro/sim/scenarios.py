"""Declarative scenario specifications, and the paper's S1–S4.

This module owns the :class:`ScenarioSpec` data structure (the legacy name
:class:`Scenario` is an alias) and the four fixed scenarios of the paper's
evaluation (Section IV-A).  Everything *around* the specs — the named
scenario catalog, parametric scenario families and the seeded sampler —
lives in :mod:`repro.scenarios`; :func:`build_scenario` resolves any name
registered there, so the legacy entry point reaches the whole catalog.

All four paper scenarios start with the ego vehicle cruising at 60 mph and
a lead vehicle 50, 70 or 100 m ahead:

* **S1** — lead cruises at 35 mph.
* **S2** — lead cruises at 50 mph.
* **S3** — lead slows down from 50 mph to 35 mph.
* **S4** — lead accelerates from 35 mph to 50 mph.
"""

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.sim.actors import (
    IdmParams,
    LaneChange,
    LeadBehavior,
    ManeuverPhase,
    behavior_profile,
)
from repro.sim.road import RoadSpec
from repro.sim.units import mph_to_ms


@dataclass(frozen=True)
class ActorSpec:
    """Declarative description of one scripted traffic vehicle.

    Attributes:
        kind: Role label (``"cut_in"``, ``"cut_out"``, ``"traffic"``, ...),
            used in logs and the scenario-catalog table.
        initial_gap: Bumper-to-bumper distance from the ego front bumper to
            this vehicle's rear bumper at t=0, m (ahead of the ego).
        initial_speed: Initial speed, m/s.
        lane: Starting lane: 0 = ego lane, +1 = first lane to the left.
        profile: Piecewise longitudinal maneuver profile.
        lane_change: Optional scripted lateral maneuver (``target_d`` in
            metres from the ego lane centreline, + left).
        length / width: Body dimensions, m.
        idm: Optional IDM car-following parameters; when set, the vehicle
            keeps a gap to whatever is directly ahead in its lane instead
            of blindly following its profile (dense-traffic scripts).
    """

    kind: str
    initial_gap: float
    initial_speed: float
    lane: int = 0
    profile: Tuple[ManeuverPhase, ...] = ()
    lane_change: Optional[LaneChange] = None
    length: float = 4.6
    width: float = 1.8
    idm: Optional[IdmParams] = None

    def __post_init__(self):
        if self.initial_gap <= 0:
            raise ValueError("actor initial_gap must be positive (ahead of the ego)")
        if self.initial_speed < 0:
            raise ValueError("actor initial_speed must be non-negative")


@dataclass(frozen=True)
class ScenarioSpec:
    """A fully parameterised driving scenario.

    Speeds are stored in m/s; use :func:`repro.sim.units.mph_to_ms` when
    constructing scenarios from the paper's mph figures.

    The single-transition lead fields (``lead_behavior``,
    ``lead_target_speed``, ...) describe the paper's S1–S4 maneuvers; a
    non-empty ``lead_profile`` replaces them with an arbitrary piecewise
    maneuver, and ``actors`` adds further scripted traffic (cut-in /
    cut-out vehicles, stop-and-go traffic, ...).
    """

    name: str
    description: str
    ego_initial_speed: float
    cruise_speed: float
    lead_initial_speed: Optional[float] = None
    lead_behavior: LeadBehavior = LeadBehavior.CRUISE
    lead_target_speed: Optional[float] = None
    lead_speed_change_rate: float = 1.0
    lead_speed_change_start: float = 10.0
    initial_distance: float = 70.0
    ego_initial_lane_offset: float = -0.3   # m, slightly towards the right guardrail
    with_follower: bool = True
    follower_gap: float = 45.0              # m behind the ego vehicle
    follower_speed: float = mph_to_ms(55.0)
    road: RoadSpec = RoadSpec()
    # -- multi-actor / piecewise extensions (PR 2) -----------------------
    with_lead: bool = True
    lead_profile: Tuple[ManeuverPhase, ...] = ()
    lead_lane_change: Optional[LaneChange] = None
    actors: Tuple[ActorSpec, ...] = ()
    follower_headway: float = 1.5           # s, follower's desired time headway
    follower_reaction_delay: float = 1.2    # s, follower's perception delay
    family: str = ""                        # parametric family name, "" for fixed scenarios
    tags: Tuple[str, ...] = ()

    def __post_init__(self):
        if self.with_lead:
            if self.lead_initial_speed is None:
                raise ValueError(
                    f"scenario {self.name!r}: lead_initial_speed is required "
                    "when with_lead=True (pass 0.0 explicitly for a stopped lead)"
                )
            if self.lead_initial_speed < 0:
                raise ValueError("lead_initial_speed must be non-negative")
        elif self.lead_initial_speed is None:
            # Normalise so that equal no-lead scenarios compare equal.
            object.__setattr__(self, "lead_initial_speed", 0.0)

    def with_initial_distance(self, distance: float) -> "ScenarioSpec":
        """Return a copy of the scenario with a different initial gap."""
        if distance <= 0:
            raise ValueError("initial distance must be positive")
        return replace(self, initial_distance=distance)

    def variant(self, **overrides) -> "ScenarioSpec":
        """Return a copy with arbitrary field overrides."""
        return replace(self, **overrides)

    def lead_phases(self) -> Tuple[ManeuverPhase, ...]:
        """The effective piecewise maneuver profile of the lead vehicle."""
        if self.lead_profile:
            return self.lead_profile
        return behavior_profile(
            self.lead_behavior,
            self.lead_target_speed,
            self.lead_speed_change_rate,
            self.lead_speed_change_start,
        )

    def actor_kinds(self) -> Tuple[str, ...]:
        """Role labels of every scripted vehicle in the scenario."""
        kinds = ["lead"] if self.with_lead else []
        kinds.extend(spec.kind for spec in self.actors)
        if self.with_follower:
            kinds.append("follower")
        return tuple(kinds)


#: Backwards-compatible name: scenarios have always been called
#: ``Scenario`` in configs, tests and examples.
Scenario = ScenarioSpec


_EGO_SPEED = mph_to_ms(60.0)

SCENARIOS: Dict[str, Scenario] = {
    "S1": Scenario(
        name="S1",
        description="Lead vehicle cruises at 35 mph",
        ego_initial_speed=_EGO_SPEED,
        cruise_speed=_EGO_SPEED,
        lead_initial_speed=mph_to_ms(35.0),
        lead_behavior=LeadBehavior.CRUISE,
    ),
    "S2": Scenario(
        name="S2",
        description="Lead vehicle cruises at 50 mph",
        ego_initial_speed=_EGO_SPEED,
        cruise_speed=_EGO_SPEED,
        lead_initial_speed=mph_to_ms(50.0),
        lead_behavior=LeadBehavior.CRUISE,
    ),
    "S3": Scenario(
        name="S3",
        description="Lead vehicle slows down from 50 mph to 35 mph",
        ego_initial_speed=_EGO_SPEED,
        cruise_speed=_EGO_SPEED,
        lead_initial_speed=mph_to_ms(50.0),
        lead_behavior=LeadBehavior.DECELERATE,
        lead_target_speed=mph_to_ms(35.0),
        lead_speed_change_rate=1.0,
        lead_speed_change_start=12.0,
    ),
    "S4": Scenario(
        name="S4",
        description="Lead vehicle accelerates from 35 mph to 50 mph",
        ego_initial_speed=_EGO_SPEED,
        cruise_speed=_EGO_SPEED,
        lead_initial_speed=mph_to_ms(35.0),
        lead_behavior=LeadBehavior.ACCELERATE,
        lead_target_speed=mph_to_ms(50.0),
        lead_speed_change_rate=1.0,
        lead_speed_change_start=12.0,
    ),
}

# The three initial gaps used in the paper's experiments (metres).
INITIAL_DISTANCES: Tuple[float, ...] = (50.0, 70.0, 100.0)


def build_scenario(name: str, initial_distance: Optional[float] = None) -> Scenario:
    """Look up a scenario by name, with an optional initial-gap override.

    Resolves S1–S4 and every scenario registered in the catalog
    (:data:`repro.scenarios.CATALOG`).  The default ``None`` keeps the
    scenario's own gap (70 m for the paper's S1–S4; catalog scenarios
    carry gaps their multi-actor scripts are tuned to).
    """
    if name in SCENARIOS:
        base = SCENARIOS[name]
        if initial_distance is None:
            return base
        return base.with_initial_distance(initial_distance)
    # Deferred import: repro.scenarios builds on this module.  The
    # distance-override semantics live in ScenarioCatalog.build.
    from repro.scenarios.catalog import CATALOG

    return CATALOG.build(name, initial_distance)

"""Unit conversions and physical constants.

The simulator and ADAS stack use SI units internally (metres, seconds,
radians).  The paper states thresholds in mph and degrees; these helpers
convert at the API boundary.
"""

import math

# Conversion factors.
MPH_TO_MS = 0.44704
MS_TO_MPH = 1.0 / MPH_TO_MS
KPH_TO_MS = 1.0 / 3.6
MS_TO_KPH = 3.6
DEG_TO_RAD = math.pi / 180.0
RAD_TO_DEG = 180.0 / math.pi

# Simulation timing (paper: 5000 steps of ~10 ms each, i.e. 50 s at 100 Hz).
DT = 0.01
STEPS_PER_SIMULATION = 5000
SIMULATION_DURATION = DT * STEPS_PER_SIMULATION

# Standard gravity, used for comfort/limit calculations.
GRAVITY = 9.81


def mph_to_ms(speed_mph: float) -> float:
    """Convert a speed in miles-per-hour to metres-per-second."""
    return speed_mph * MPH_TO_MS


def ms_to_mph(speed_ms: float) -> float:
    """Convert a speed in metres-per-second to miles-per-hour."""
    return speed_ms * MS_TO_MPH


def deg_to_rad(angle_deg: float) -> float:
    """Convert an angle in degrees to radians."""
    return angle_deg * DEG_TO_RAD


def rad_to_deg(angle_rad: float) -> float:
    """Convert an angle in radians to degrees."""
    return angle_rad * RAD_TO_DEG


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the closed interval ``[low, high]``.

    Raises ``ValueError`` if the interval is empty (``low > high``).
    """
    if low > high:
        raise ValueError(f"empty clamp interval: [{low}, {high}]")
    return max(low, min(high, value))

"""Simulated sensors: GPS, radar, and a camera/perception model.

These replace CARLA's sensor suite and OpenPilot's vision model.  Each
sensor publishes its Cereal-substitute message at its nominal rate with
configurable Gaussian noise, which is what the attack's context-inference
step consumes (the paper's threats-to-validity section notes that sensor
data quality affects the attack; the noise knobs let us sweep that).
"""

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.messaging.messages import (
    GpsLocationExternal,
    LaneLine,
    ModelV2,
    RadarLead,
    RadarState,
)
from repro.sim.actors import LeadVehicle
from repro.sim.road import Road
from repro.sim.units import rad_to_deg
from repro.sim.vehicle import EgoVehicle


@dataclass(frozen=True)
class SensorNoise:
    """Standard deviations of the zero-mean Gaussian sensor noise."""

    gps_speed_std: float = 0.05        # m/s
    radar_distance_std: float = 0.15   # m
    radar_speed_std: float = 0.05      # m/s
    lane_position_std: float = 0.03    # m
    heading_std: float = 0.002         # rad

    @staticmethod
    def noiseless() -> "SensorNoise":
        """A noise model with every standard deviation set to zero."""
        return SensorNoise(0.0, 0.0, 0.0, 0.0, 0.0)


class _PeriodicSensor:
    """Base class handling the publish-at-frequency bookkeeping."""

    def __init__(self, frequency_hz: float):
        if frequency_hz <= 0:
            raise ValueError("sensor frequency must be positive")
        self.period = 1.0 / frequency_hz
        self._last_publish = float("-inf")

    def due(self, time: float) -> bool:
        """True if a new measurement should be produced at ``time``."""
        if time - self._last_publish + 1e-9 >= self.period:
            self._last_publish = time
            return True
        return False


class GpsSensor(_PeriodicSensor):
    """GPS receiver publishing ``gpsLocationExternal``."""

    def __init__(self, noise: SensorNoise, rng: np.random.Generator, frequency_hz: float = 10.0):
        super().__init__(frequency_hz)
        self.noise = noise
        self.rng = rng

    def measure(self, ego: EgoVehicle, road: Road) -> GpsLocationExternal:
        speed = ego.state.speed + self.rng.normal(0.0, self.noise.gps_speed_std)
        bearing = rad_to_deg(road.heading(ego.state.s) + ego.state.heading_error)
        return GpsLocationExternal(
            speed=max(0.0, speed),
            bearing_deg=bearing,
            latitude=38.0336 + ego.state.s * 1e-5,
            longitude=-78.5080,
            altitude=160.0,
            accuracy=1.0,
            flags=1,
        )


class RadarSensor(_PeriodicSensor):
    """Forward radar publishing ``radarState`` (closest lead track)."""

    def __init__(
        self,
        noise: SensorNoise,
        rng: np.random.Generator,
        frequency_hz: float = 20.0,
        max_range: float = 180.0,
    ):
        super().__init__(frequency_hz)
        self.noise = noise
        self.rng = rng
        self.max_range = max_range

    def measure(self, ego: EgoVehicle, lead: Optional[LeadVehicle]) -> RadarState:
        if lead is None:
            return RadarState(lead_one=None)
        d_rel = lead.rear_s - ego.front_s
        if d_rel > self.max_range or d_rel < -5.0:
            return RadarState(lead_one=None)
        d_rel_meas = d_rel + self.rng.normal(0.0, self.noise.radar_distance_std)
        v_rel = lead.state.speed - ego.state.speed
        v_rel_meas = v_rel + self.rng.normal(0.0, self.noise.radar_speed_std)
        track = RadarLead(
            d_rel=max(0.0, d_rel_meas),
            v_rel=v_rel_meas,
            v_lead=max(0.0, ego.state.speed + v_rel_meas),
            a_lead=lead.state.accel,
            y_rel=lead.state.d - ego.state.d,
            status=True,
        )
        return RadarState(lead_one=track)


class CameraModel(_PeriodicSensor):
    """Perception-model substitute publishing ``modelV2``.

    OpenPilot derives lane line positions from a vision model; here they
    are computed from ground-truth geometry plus noise, which preserves
    the downstream surface (lateral offset, lane width, lane line
    distances) the planner and the attacker both consume.
    """

    def __init__(
        self,
        noise: SensorNoise,
        rng: np.random.Generator,
        frequency_hz: float = 20.0,
        vision_lead_range: float = 120.0,
        curvature_lookahead: float = 15.0,
    ):
        """Args:
            curvature_lookahead: Distance ahead (m) at which the model
                estimates the path curvature used by the lateral planner's
                feed-forward term.
        """
        super().__init__(frequency_hz)
        self.noise = noise
        self.rng = rng
        self.vision_lead_range = vision_lead_range
        self.curvature_lookahead = curvature_lookahead
        self._frame_id = 0

    def measure(
        self, ego: EgoVehicle, road: Road, lead: Optional[LeadVehicle], time: float = 0.0
    ) -> ModelV2:
        self._frame_id += 1
        # Vision-based lane detection re-anchors to whichever lane the
        # vehicle is currently driving in: after a (possibly forced) lane
        # change to the left, the reported lateral offset is relative to
        # the new lane, so the lateral controller does not keep fighting a
        # multi-metre error towards the original lane.
        lane_width = road.spec.lane_width
        lane_index = int(round(ego.state.d / lane_width))
        lane_index = max(0, min(road.spec.num_left_lanes, lane_index))
        d = ego.state.d - lane_index * lane_width
        lane_noise = self.rng.normal(0.0, self.noise.lane_position_std, size=2)
        left_line_offset = (road.left_lane_line - d) + lane_noise[0]
        right_line_offset = (road.right_lane_line - d) + lane_noise[1]
        heading = ego.state.heading_error + self.rng.normal(0.0, self.noise.heading_std)
        curvature = road.curvature(ego.state.s + self.curvature_lookahead)

        lead_probability = 0.0
        lead_distance = 0.0
        if lead is not None:
            gap = lead.rear_s - ego.front_s
            if 0.0 <= gap <= self.vision_lead_range:
                lead_probability = 0.95
                lead_distance = gap + self.rng.normal(0.0, self.noise.radar_distance_std)

        return ModelV2(
            lane_lines=(
                LaneLine(offset=left_line_offset, probability=0.95),
                LaneLine(offset=right_line_offset, probability=0.95),
            ),
            lane_width=road.spec.lane_width,
            lateral_offset=float(d + self.rng.normal(0.0, self.noise.lane_position_std)),
            heading_error=heading,
            curvature=float(curvature),
            lead_probability=lead_probability,
            lead_distance=max(0.0, lead_distance),
            frame_id=self._frame_id,
        )

"""Simulation world: clock, actors, sensors, and the physical buses.

The :class:`World` owns the road, the ego vehicle, the scripted traffic,
the sensors and the collision/lane monitors.  Every control period it

1. publishes sensor messages on the Cereal-substitute bus,
2. publishes the car's state frames on the CAN bus,
3. decodes the latest actuator-command frames from the CAN bus (these may
   have been tampered with by an attacker registered as a bus
   transformer), and
4. integrates the vehicle dynamics and ground-truth monitors.

The ADAS, attack engine, driver model and fault-injection engine all live
*outside* the world and interact with it only through the buses, matching
the paper's architecture (Fig. 5).
"""

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.can.bus import CANBus
from repro.can.frame import CANFrame
from repro.can.honda import ADDR, HONDA_DBC
from repro.messaging.bus import MessageBus
from repro.messaging.messages import CarState
from repro.sim.actors import FollowerVehicle, LeadVehicle, ScriptedVehicle
from repro.sim.collision import CollisionDetector, CollisionEvent, LaneMonitor
from repro.sim.road import Road
from repro.sim.scenarios import Scenario
from repro.sim.sensors import CameraModel, GpsSensor, RadarSensor, SensorNoise
from repro.sim.units import DT
from repro.sim.vehicle import ActuatorCommand, EgoVehicle, VehicleParams


@dataclass(frozen=True)
class WorldConfig:
    """Configuration of the simulation world.

    The lateral disturbance models slowly varying road crown / crosswind /
    tyre pull.  OpenPilot's proportional lane centering does not reject it
    completely, so the ego vehicle rides — and occasionally crosses — lane
    lines even without attacks, which reproduces the paper's Observation 1
    (lane invasions happen without any fault injection) and provides the
    near-lane-edge contexts (rules 3 and 4 of the safety context table)
    that trigger steering attacks.
    """

    scenario: Scenario
    noise: SensorNoise = SensorNoise()
    seed: int = 0
    record_trajectory: bool = True
    trajectory_decimation: int = 10   # record one sample every N steps
    disturbance_amplitude: float = 0.006   # 1/m, peak disturbance curvature
    disturbance_period: float = 10.0       # s


@dataclass
class TrajectorySample:
    """One recorded point of the ego trajectory (for Figure 7)."""

    time: float
    s: float
    d: float
    speed: float
    steering_wheel_deg: float
    x: float = 0.0
    y: float = 0.0


@dataclass
class WorldStepResult:
    """Ground-truth observations produced by one world step."""

    time: float
    collision: Optional[CollisionEvent] = None
    lead_gap: Optional[float] = None       # bumper-to-bumper distance, m
    lead_speed: Optional[float] = None


class World:
    """The physical simulation (CARLA substitute)."""

    def __init__(self, config: WorldConfig, message_bus: MessageBus, can_bus: CANBus):
        self.config = config
        self.message_bus = message_bus
        self.can_bus = can_bus
        self.road = Road(config.scenario.road)
        self.time = 0.0
        self.step_count = 0

        scenario = config.scenario
        params = VehicleParams()
        self.ego = EgoVehicle(
            self.road,
            params=params,
            initial_speed=scenario.ego_initial_speed,
            initial_s=0.0,
            initial_d=scenario.ego_initial_lane_offset,
        )
        # The paper quotes the gap as the distance to the lead vehicle, so
        # position the lead's rear bumper `initial_distance` ahead of the
        # ego front bumper.
        self.scenario_lead: Optional[LeadVehicle] = None
        if scenario.with_lead:
            self.scenario_lead = LeadVehicle(
                initial_s=self.ego.front_s + scenario.initial_distance + 4.6 / 2.0,
                initial_speed=scenario.lead_initial_speed,
                behavior=scenario.lead_behavior,
                target_speed=scenario.lead_target_speed,
                speed_change_rate=scenario.lead_speed_change_rate,
                speed_change_start=scenario.lead_speed_change_start,
                # lead_phases() is the single place the profile-vs-behavior
                # precedence is resolved; the behavior args above only feed
                # the wrapper's legacy attributes.
                profile=scenario.lead_phases(),
                lane_change=scenario.lead_lane_change,
            )
        # Further scripted traffic (cut-in / cut-out vehicles, queues, ...).
        lane_width = scenario.road.lane_width
        self.scripted_actors: List[ScriptedVehicle] = [
            ScriptedVehicle(
                initial_s=self.ego.front_s + spec.initial_gap + spec.length / 2.0,
                initial_speed=spec.initial_speed,
                profile=spec.profile,
                initial_d=spec.lane * lane_width,
                lane_change=spec.lane_change,
                length=spec.length,
                width=spec.width,
                kind=spec.kind,
                idm=spec.idm,
            )
            for spec in scenario.actors
        ]
        # Lead selection only runs when an actor can enter or leave the ego
        # lane; for single-lead scenarios (S1-S4) `self.lead` is pinned to
        # the scenario lead and the step path is unchanged.
        self._dynamic_lead = bool(self.scripted_actors) or (
            scenario.lead_lane_change is not None
        )
        self._half_lane = lane_width / 2.0
        # All scripted traffic ahead of the ego, built once: the per-step
        # lead selection and collision sweep iterate it without allocating.
        self._traffic: List[ScriptedVehicle] = (
            [] if self.scenario_lead is None else [self.scenario_lead]
        ) + self.scripted_actors
        # IDM car-following only costs a per-actor leader scan when some
        # actor actually enables it; the default path is unchanged.
        self._any_idm = any(actor.idm is not None for actor in self.scripted_actors)
        self.lead: Optional[ScriptedVehicle] = self._select_lead()
        self.follower: Optional[FollowerVehicle] = None
        if scenario.with_follower:
            self.follower = FollowerVehicle(
                initial_s=self.ego.rear_s - scenario.follower_gap,
                initial_speed=scenario.follower_speed,
                reaction_delay=scenario.follower_reaction_delay,
                desired_headway=scenario.follower_headway,
            )

        rng = np.random.default_rng(config.seed)
        self.gps = GpsSensor(config.noise, rng)
        self.radar = RadarSensor(config.noise, rng)
        self.camera = CameraModel(config.noise, rng)
        self._disturbance_phase = float(rng.uniform(0.0, 2.0 * np.pi))
        self._disturbance_omega = 2.0 * np.pi / config.disturbance_period

        self.collision_detector = CollisionDetector(self.road)
        self.lane_monitor = LaneMonitor(self.road)

        self.trajectory: List[TrajectorySample] = []
        self._can_counter = 0
        self._last_command = ActuatorCommand()

        # Hot-path caches: resolve the arbitration ids and compiled codec
        # plans once instead of a dict lookup per call.
        self._addr_powertrain = ADDR["POWERTRAIN_DATA"]
        self._addr_steering_sensors = ADDR["STEERING_SENSORS"]
        self._addr_steering_control = ADDR["STEERING_CONTROL"]
        self._addr_acc_control = ADDR["ACC_CONTROL"]
        self._plan_powertrain = HONDA_DBC.plan_by_address(self._addr_powertrain)
        self._plan_steering_sensors = HONDA_DBC.plan_by_address(self._addr_steering_sensors)
        self._plan_steering_control = HONDA_DBC.plan_by_address(self._addr_steering_control)
        self._plan_acc_control = HONDA_DBC.plan_by_address(self._addr_acc_control)

    def _select_lead(self) -> Optional[ScriptedVehicle]:
        """The closest scripted vehicle ahead of the ego in the ego lane.

        With no extra actors and a lane-keeping scenario lead this is the
        scenario lead itself, unconditionally; the dynamic path handles
        cut-ins becoming the lead and cut-outs revealing a new one.
        """
        if not self._dynamic_lead:
            return self.scenario_lead
        ego_s = self.ego.state.s
        best: Optional[ScriptedVehicle] = None
        for vehicle in self._traffic:
            state = vehicle.state
            if state.s < ego_s or abs(state.d) > self._half_lane:
                continue
            if best is None or state.s < best.state.s:
                best = vehicle
        return best

    def collision_others(self) -> Sequence[ScriptedVehicle]:
        """The vehicles the collision sweep must consider besides the lead.

        Single place for the invariant shared by :meth:`step` and the
        kernel's detect stage: with dynamic lead selection the whole
        precomputed traffic list is swept (the detector skips the tracked
        lead), otherwise the lead-only fast path applies.
        """
        return self._traffic if self._dynamic_lead else ()

    def _idm_leader(self, actor: ScriptedVehicle):
        """The vehicle directly ahead of ``actor`` in its lane (incl. the ego).

        Only evaluated for actors with IDM car-following enabled; returns
        ``None`` when ``actor`` has a clear lane ahead.
        """
        if actor.idm is None:
            return None
        s = actor.state.s
        d = actor.state.d
        best = None
        best_s = float("inf")
        for vehicle in self._traffic:
            if vehicle is actor:
                continue
            state = vehicle.state
            if state.s <= s or abs(state.d - d) > self._half_lane:
                continue
            if state.s < best_s:
                best = vehicle
                best_s = state.s
        ego_state = self.ego.state
        if ego_state.s > s and ego_state.s < best_s and abs(ego_state.d - d) <= self._half_lane:
            return self.ego
        return best

    def disturbance_curvature(self, time: float) -> float:
        """Environmental lateral disturbance (road crown / crosswind), 1/m."""
        if self.config.disturbance_amplitude == 0.0:
            return 0.0
        # math.sin is bit-identical to np.sin on scalars (both call libm)
        # and avoids the numpy scalar boxing on the 100 Hz path.
        return self.config.disturbance_amplitude * math.sin(
            self._disturbance_omega * time + self._disturbance_phase
        )

    # -- sensing and CAN output ------------------------------------------

    def publish_sensors(self) -> None:
        """Publish due sensor messages on the Cereal-substitute bus."""
        self.message_bus.set_time(self.time)
        if self.gps.due(self.time):
            self.message_bus.publish("gpsLocationExternal", self.gps.measure(self.ego, self.road))
        if self.radar.due(self.time):
            self.message_bus.publish("radarState", self.radar.measure(self.ego, self.lead))
        if self.camera.due(self.time):
            self.message_bus.publish(
                "modelV2", self.camera.measure(self.ego, self.road, self.lead, time=self.time)
            )

    def publish_car_can(self) -> None:
        """Publish the car's state frames (speed, steering) on the CAN bus.

        Built on the same :meth:`batched_car_can_inputs` /
        :meth:`send_car_can_frames` pair the lockstep batch executor
        uses, so the signal formulas exist exactly once.
        """
        speed, accel, pedal_gas, brake_pressed, steer, counter = self.batched_car_can_inputs()
        self.send_car_can_frames(
            self._plan_powertrain.encode(
                {
                    "XMISSION_SPEED": speed,
                    "ACCEL_MEASURED": accel,
                    "PEDAL_GAS": pedal_gas,
                    "BRAKE_PRESSED": brake_pressed,
                    "GAS_PRESSED": 0.0,
                },
                counter=counter,
            ),
            self._plan_steering_sensors.encode(
                {
                    "STEER_ANGLE": steer,
                    "STEER_ANGLE_RATE": 0.0,
                },
                counter=counter,
            ),
        )

    # -- car-state CAN semantics (shared scalar / lockstep-batch path) ----
    #
    # The batch executor (repro.kernel.batch) vectorises the two car-state
    # CAN encodes across all runs of a batch.  The three helpers below are
    # the single home of the semantics — which values go into which
    # signal, frame order, counter advance, and the decode tail of
    # read_car_state_into.  The scalar publish_car_can /
    # read_car_state_into are built on them, and the batch executor calls
    # them around the shared BatchMessageCodec, so the two paths cannot
    # drift apart.

    def batched_car_can_inputs(self) -> "tuple[float, float, float, float, float, int]":
        """Advance the CAN counter and return this step's car-state signal values.

        Returns ``(speed, accel, pedal_gas, brake_pressed, steer_angle,
        counter)`` — exactly the values :meth:`publish_car_can` would
        encode (the remaining signals are constant zero).
        """
        state = self.ego.state
        self._can_counter = (self._can_counter + 1) & 0x3
        last = self._last_command
        return (
            state.speed,
            state.accel,
            max(0.0, last.accel / 4.0),
            1.0 if last.brake > 0.1 else 0.0,
            state.steering_wheel_deg,
            self._can_counter,
        )

    def send_car_can_frames(self, powertrain_payload: bytes, sensors_payload: bytes) -> None:
        """Send pre-encoded car-state payloads (same frame order as
        :meth:`publish_car_can`)."""
        self.can_bus.send(
            CANFrame(self._addr_powertrain, powertrain_payload, timestamp=self.time)
        )
        self.can_bus.send(
            CANFrame(self._addr_steering_sensors, sensors_payload, timestamp=self.time)
        )

    def apply_fused_car_state(
        self, out: CarState, speed: float, accel: float, steer: float
    ) -> CarState:
        """The tail of :meth:`read_car_state_into` once the CAN round trip
        has been resolved to ``speed``/``accel``/``steer``.

        :meth:`read_car_state_into` delegates here after decoding the bus;
        the batch executor calls it directly with the vectorised codec
        read-back, which is only valid when the frames on the bus are
        known to be the ones the codec just encoded (no transformers).
        """
        out.v_ego = speed
        out.a_ego = accel
        out.steering_angle_deg = steer
        last = self._last_command
        out.gas = max(0.0, last.accel / 4.0)
        out.brake = min(1.0, last.brake / 4.0)
        out.cruise_enabled = True
        out.cruise_speed = self.config.scenario.cruise_speed
        out.standstill = speed < 0.1
        return out

    def read_car_state(self) -> CarState:
        """Decode the car's CAN state frames into a fresh :class:`CarState`."""
        return self.read_car_state_into(CarState())

    def read_car_state_into(self, out: CarState) -> CarState:
        """Decode the car's CAN state frames into ``out`` (kernel fast path).

        Every field that :meth:`read_car_state` sets is overwritten, so a
        reused instance never carries stale values.
        """
        speed = self.ego.state.speed
        accel = self.ego.state.accel
        steer = self.ego.state.steering_wheel_deg
        powertrain = self.can_bus.latest(self._addr_powertrain)
        sensors = self.can_bus.latest(self._addr_steering_sensors)
        if powertrain is not None:
            decoded = self._plan_powertrain.decode(
                powertrain, signals=("XMISSION_SPEED", "ACCEL_MEASURED")
            )
            speed = decoded["XMISSION_SPEED"]
            accel = decoded["ACCEL_MEASURED"]
        if sensors is not None:
            steer = self._plan_steering_sensors.decode_signal(sensors, "STEER_ANGLE")
        return self.apply_fused_car_state(out, speed, accel, steer)

    # -- actuation --------------------------------------------------------

    def decode_actuator_command(self) -> ActuatorCommand:
        """Decode the most recent actuator frames from the CAN bus.

        If the ADAS has not yet sent a command (first cycle), the previous
        command is held, which matches real actuator behaviour.
        """
        return self.decode_actuator_command_into(ActuatorCommand())

    def decode_actuator_command_into(self, out: ActuatorCommand) -> ActuatorCommand:
        """Decode the actuator frames into ``out`` (kernel fast path).

        ``out`` may be the object currently held as the last executed
        command; the held-command semantics (no frame yet -> previous
        value) still apply because every field is seeded from the last
        command before decoding.
        """
        steering_frame = self.can_bus.latest(self._addr_steering_control)
        acc_frame = self.can_bus.latest(self._addr_acc_control)
        last = self._last_command
        out.accel = last.accel
        out.brake = last.brake
        out.steering_angle_deg = last.steering_angle_deg
        if acc_frame is not None:
            decoded = self._plan_acc_control.decode(
                acc_frame, signals=("ACCEL_COMMAND", "BRAKE_COMMAND")
            )
            out.accel = max(0.0, decoded["ACCEL_COMMAND"])
            out.brake = max(0.0, decoded["BRAKE_COMMAND"])
        if steering_frame is not None:
            out.steering_angle_deg = self._plan_steering_control.decode_signal(
                steering_frame, "STEER_ANGLE_CMD"
            )
        return out

    def integrate(self, command: ActuatorCommand) -> None:
        """Physics half of a world step: actors + clock, no monitors.

        The kernel's actuate stage calls this directly; lane/collision
        monitoring and trajectory recording live in the detect and record
        stages (:mod:`repro.kernel.stages`).  :meth:`step` composes the
        same pieces for the legacy single-call API.
        """
        self._last_command = command
        self.ego.step(command, DT, disturbance_curvature=self.disturbance_curvature(self.time))
        self.advance_traffic()

    def advance_traffic(self) -> None:
        """The tail of :meth:`integrate` after the ego physics: scripted
        traffic, lead selection, the follower and the clock.

        Split out so the lockstep batch executor can integrate the ego
        vehicles of a whole batch as one vectorised column
        (:func:`repro.sim.vehicle.step_ego_columns`) and then advance each
        run's traffic with the exact per-run code below; the scalar
        :meth:`integrate` composes the same two halves.
        """
        if self.scenario_lead is not None:
            self.scenario_lead.step(self.time, DT)
        if self.scripted_actors:
            if self._any_idm:
                for actor in self.scripted_actors:
                    actor.step(self.time, DT, leader=self._idm_leader(actor))
            else:
                for actor in self.scripted_actors:
                    actor.step(self.time, DT)
        if self._dynamic_lead:
            self.lead = self._select_lead()
        if self.follower is not None:
            self.follower.step(self.time, self.ego.rear_s, self.ego.state.speed, DT)

        self.time += DT
        self.step_count += 1

    def observe_into(self, ctx) -> None:
        """Refresh the kinematic fields of a kernel StepContext.

        Uses the same arithmetic as the ego geometry properties and
        :meth:`lead_observation`, so the values are bit-identical to the
        property-chain reads they replace.
        """
        state = self.ego.state
        ego = self.ego
        ctx.end_time = self.time
        ctx.ego_s = state.s
        ctx.ego_d = state.d
        ctx.ego_speed = state.speed
        ctx.ego_heading_error = state.heading_error
        ctx.ego_steering_deg = state.steering_wheel_deg
        ctx.ego_front_s = state.s + ego._half_length
        ctx.ego_rear_s = state.s - ego._half_length
        ctx.ego_left_edge = state.d + ego._half_width
        ctx.ego_right_edge = state.d - ego._half_width
        lead = self.lead
        ctx.lead = lead
        if lead is None:
            ctx.lead_gap = None
            ctx.lead_speed = None
            ctx.lead_d = 0.0
        else:
            lead_state = lead.state
            ctx.lead_gap = lead.rear_s - ctx.ego_front_s
            ctx.lead_speed = lead_state.speed
            ctx.lead_d = lead_state.d

    def record_trajectory_sample(self) -> None:
        """Append the current ego state to the recorded trajectory.

        Cartesian coordinates are filled in lazily by the analysis layer
        (Figure 7) to keep the inner loop cheap.
        """
        state = self.ego.state
        self.trajectory.append(
            TrajectorySample(
                time=self.time,
                s=state.s,
                d=state.d,
                speed=state.speed,
                steering_wheel_deg=state.steering_wheel_deg,
            )
        )

    def step(self, command: Optional[ActuatorCommand] = None) -> WorldStepResult:
        """Advance the physical world by one control period (10 ms).

        Args:
            command: Actuator command to execute.  If ``None``, the command
                is decoded from the CAN bus (normal ADAS operation); a
                non-``None`` value models the human driver overriding the
                system.
        """
        if command is None:
            command = self.decode_actuator_command()
        self.integrate(command)

        self.lane_monitor.check(self.time, self.ego)
        collision = self.collision_detector.check(
            self.time,
            self.ego,
            self.lead,
            self.follower,
            others=self.collision_others(),
        )

        if self.config.record_trajectory and self.step_count % self.config.trajectory_decimation == 0:
            self.record_trajectory_sample()

        lead_gap, lead_speed = self.lead_observation()
        return WorldStepResult(
            time=self.time, collision=collision, lead_gap=lead_gap, lead_speed=lead_speed
        )

    def lead_observation(self) -> "tuple[Optional[float], Optional[float]]":
        """Ground-truth (bumper-to-bumper gap, lead speed), or ``(None, None)``.

        This is the single place the lead gap is computed; the simulation
        loop reuses the value carried by :class:`WorldStepResult` instead
        of recomputing it every step.
        """
        if self.lead is None:
            return None, None
        return self.lead.rear_s - self.ego.front_s, self.lead.state.speed

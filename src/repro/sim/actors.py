"""Other traffic participants: the lead vehicle and a following vehicle.

The lead vehicle realises the four scripted behaviours of the paper's
driving scenarios (S1–S4); the follower exists to detect rear-end
collisions (accident A2) when the ego vehicle is forced to a stop in the
travel lane by a Deceleration attack.
"""

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.sim.units import DT, clamp


class LeadBehavior(Enum):
    """Longitudinal behaviour profile of the lead vehicle."""

    CRUISE = "cruise"
    DECELERATE = "decelerate"
    ACCELERATE = "accelerate"


@dataclass
class ActorState:
    """Kinematic state of a scripted actor (lane-following point mass)."""

    s: float
    d: float
    speed: float
    accel: float = 0.0


class LeadVehicle:
    """Scripted lead vehicle travelling along the ego lane centreline."""

    def __init__(
        self,
        initial_s: float,
        initial_speed: float,
        behavior: LeadBehavior = LeadBehavior.CRUISE,
        target_speed: Optional[float] = None,
        speed_change_rate: float = 1.0,
        speed_change_start: float = 10.0,
        length: float = 4.6,
        width: float = 1.8,
    ):
        """Create a lead vehicle.

        Args:
            initial_s: Initial arc-length position (front of ego + gap).
            initial_speed: Initial speed, m/s.
            behavior: One of the :class:`LeadBehavior` profiles.
            target_speed: Final speed for DECELERATE/ACCELERATE profiles.
            speed_change_rate: Magnitude of the speed change, m/s^2.
            speed_change_start: Simulation time at which the change starts.
            length / width: Body dimensions, m.
        """
        if behavior is not LeadBehavior.CRUISE and target_speed is None:
            raise ValueError("target_speed is required for non-cruise behaviours")
        self.state = ActorState(s=initial_s, d=0.0, speed=initial_speed)
        self.behavior = behavior
        self.target_speed = initial_speed if target_speed is None else target_speed
        self.speed_change_rate = abs(speed_change_rate)
        self.speed_change_start = speed_change_start
        self.length = length
        self.width = width
        self._half_length = length / 2.0

    @property
    def rear_s(self) -> float:
        return self.state.s - self._half_length

    @property
    def front_s(self) -> float:
        return self.state.s + self._half_length

    def step(self, time: float, dt: float = DT) -> ActorState:
        """Advance the scripted behaviour by one period."""
        state = self.state
        accel = 0.0
        if self.behavior is not LeadBehavior.CRUISE and time >= self.speed_change_start:
            if self.behavior is LeadBehavior.DECELERATE and state.speed > self.target_speed:
                accel = -self.speed_change_rate
            elif self.behavior is LeadBehavior.ACCELERATE and state.speed < self.target_speed:
                accel = self.speed_change_rate
        state.accel = accel
        state.speed = max(0.0, state.speed + accel * dt)
        if self.behavior is LeadBehavior.DECELERATE:
            state.speed = max(state.speed, self.target_speed)
        elif self.behavior is LeadBehavior.ACCELERATE:
            state.speed = min(state.speed, self.target_speed)
        state.s += state.speed * dt
        return state


class FollowerVehicle:
    """A simple human-driven vehicle behind the ego vehicle.

    The follower applies an intelligent-driver-model style control law with
    a perception/reaction delay; if the ego vehicle brakes to a stop
    without warning (hazard H2), the follower may not stop in time, which
    is the rear-end collision A2 from the paper's accident list.
    """

    def __init__(
        self,
        initial_s: float,
        initial_speed: float,
        reaction_delay: float = 1.2,
        max_decel: float = 6.0,
        desired_headway: float = 1.5,
        length: float = 4.6,
        width: float = 1.8,
    ):
        self.state = ActorState(s=initial_s, d=0.0, speed=initial_speed)
        self.reaction_delay = reaction_delay
        self.max_decel = max_decel
        self.desired_headway = desired_headway
        self.length = length
        self.width = width
        self._half_length = length / 2.0
        self._pending_gap_history = []  # (time, gap, ego_speed)

    @property
    def front_s(self) -> float:
        return self.state.s + self._half_length

    def step(self, time: float, ego_rear_s: float, ego_speed: float, dt: float = DT) -> ActorState:
        """Advance the follower towards the ego vehicle's rear bumper."""
        state = self.state
        gap = ego_rear_s - self.front_s
        # The follower reacts to the situation it perceived `reaction_delay`
        # seconds ago.
        self._pending_gap_history.append((time, gap, ego_speed))
        perceived = self._pending_gap_history[0]
        while self._pending_gap_history and time - self._pending_gap_history[0][0] >= self.reaction_delay:
            perceived = self._pending_gap_history.pop(0)
        perceived_gap, perceived_ego_speed = perceived[1], perceived[2]

        desired_gap = max(2.0, self.desired_headway * state.speed)
        closing_speed = state.speed - perceived_ego_speed
        accel = 0.6 * (perceived_gap - desired_gap) - 0.9 * closing_speed
        accel = clamp(accel, -self.max_decel, 1.5)
        state.accel = accel
        state.speed = max(0.0, state.speed + accel * dt)
        state.s += state.speed * dt
        return state

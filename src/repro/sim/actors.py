"""Other traffic participants: scripted vehicles, the lead, and a follower.

Scripted actors are lane-following point masses driven by a *piecewise
maneuver profile*: an ordered sequence of :class:`ManeuverPhase` entries,
each of which holds or tracks a target speed at a constant rate from its
start time, plus an optional scripted :class:`LaneChange`.  The profile
generalises the paper's four single-transition behaviours (S1–S4) to
arbitrary maneuvers — stop-and-go waves, oscillating leads, hard brakes,
cut-ins and cut-outs — used by the scenario catalog in
:mod:`repro.scenarios`.

:class:`LeadVehicle` keeps its original enum-based constructor
(:class:`LeadBehavior`) as a thin wrapper that compiles the behaviour into
an equivalent one-phase profile; the integration arithmetic is unchanged,
so well-formed legacy configurations (initial speed at or on the approach
side of the target, as in S1–S4) step bit-identically.  The one
divergence is the degenerate case of a target on the wrong side of the
initial speed (e.g. DECELERATE towards a *higher* speed), which the old
code snapped to the target instantly and the profile now ramps to at the
phase rate.  The follower exists to detect
rear-end collisions (accident A2) when the ego vehicle is forced to a
stop in the travel lane by a Deceleration attack.
"""

import math
from dataclasses import dataclass
from enum import Enum
from typing import Optional, Sequence, Tuple

from repro.sim.units import DT, clamp


class LeadBehavior(Enum):
    """Longitudinal behaviour profile of the lead vehicle (legacy S1–S4)."""

    CRUISE = "cruise"
    DECELERATE = "decelerate"
    ACCELERATE = "accelerate"


@dataclass(frozen=True)
class ManeuverPhase:
    """One piece of a piecewise longitudinal maneuver profile.

    From ``start_time`` on (until the next phase begins) the actor tracks
    ``target_speed`` at ``rate`` m/s^2, holding its current speed when
    ``target_speed`` is ``None`` or once the target is reached.
    """

    start_time: float
    target_speed: Optional[float] = None
    rate: float = 1.0

    def __post_init__(self):
        if self.rate <= 0:
            raise ValueError("phase rate must be positive")
        if self.target_speed is not None and self.target_speed < 0:
            raise ValueError("phase target_speed must be non-negative")


@dataclass(frozen=True)
class IdmParams:
    """Intelligent-Driver-Model car-following parameters.

    When attached to a :class:`ScriptedVehicle` (``idm=IdmParams()``, or
    declaratively via ``ActorSpec(idm=...)``), the vehicle keeps a
    speed-dependent gap to the vehicle directly ahead in its lane instead
    of blindly following its maneuver profile — so a mis-parameterised
    dense-traffic script cannot drive through a slower actor.  While a
    leader is within ``interaction_range`` the IDM law replaces the
    profile integration; the profile still supplies the *desired* speed
    (the active phase target, or the initial speed for cruise scripts),
    and braking towards a lower desired speed is bounded by
    ``comfortable_decel``, so scripted gentle stops stay gentle.

    Attributes:
        min_gap: Bumper-to-bumper jam distance s0, m.
        time_headway: Desired headway T, s.
        max_accel: Maximum acceleration a, m/s^2.
        comfortable_decel: Comfortable braking b, m/s^2 (the model may
            exceed it in emergencies up to ``max_decel``).
        max_decel: Physical braking limit, m/s^2 (positive magnitude).
        interaction_range: Leaders farther than this, m, are ignored.
    """

    min_gap: float = 2.0
    time_headway: float = 1.5
    max_accel: float = 1.5
    comfortable_decel: float = 2.0
    max_decel: float = 8.0
    interaction_range: float = 120.0

    def __post_init__(self):
        if self.min_gap <= 0 or self.time_headway < 0:
            raise ValueError("IDM gap parameters must be positive")
        if self.max_accel <= 0 or self.comfortable_decel <= 0 or self.max_decel <= 0:
            raise ValueError("IDM acceleration parameters must be positive")


@dataclass(frozen=True)
class LaneChange:
    """A scripted lateral move to a new lane offset.

    The lateral offset ramps from its value at ``start_time`` to
    ``target_d`` over ``duration`` seconds along a smooth cosine blend
    (zero lateral speed at both ends).
    """

    start_time: float
    target_d: float
    duration: float = 3.0

    def __post_init__(self):
        if self.duration <= 0:
            raise ValueError("lane change duration must be positive")


@dataclass
class ActorState:
    """Kinematic state of a scripted actor (lane-following point mass)."""

    s: float
    d: float
    speed: float
    accel: float = 0.0


class ScriptedVehicle:
    """A scripted traffic vehicle driven by a piecewise maneuver profile.

    Args:
        initial_s: Initial arc-length position of the vehicle centre.
        initial_speed: Initial speed, m/s.
        profile: Ordered :class:`ManeuverPhase` sequence (empty = cruise).
        initial_d: Initial lateral offset from the ego lane centreline, m
            (+ left; one lane to the left is ``+lane_width``).
        lane_change: Optional scripted lateral maneuver.
        length / width: Body dimensions, m.
        kind: Free-form role label (``"lead"``, ``"cut_in"``, ...), used in
            logs and scenario tables only.
    """

    def __init__(
        self,
        initial_s: float,
        initial_speed: float,
        profile: Sequence[ManeuverPhase] = (),
        initial_d: float = 0.0,
        lane_change: Optional[LaneChange] = None,
        length: float = 4.6,
        width: float = 1.8,
        kind: str = "traffic",
        idm: Optional[IdmParams] = None,
    ):
        phases = tuple(profile)
        for earlier, later in zip(phases, phases[1:]):
            if later.start_time < earlier.start_time:
                raise ValueError("maneuver phases must be ordered by start_time")
        self.state = ActorState(s=initial_s, d=initial_d, speed=initial_speed)
        self.profile: Tuple[ManeuverPhase, ...] = phases
        self.lane_change = lane_change
        self.length = length
        self.width = width
        self.kind = kind
        self.idm = idm
        # The script's current desired speed for the IDM free-flow term:
        # the latest phase target, or the initial speed for cruise scripts.
        self._idm_v0 = initial_speed
        self._half_length = length / 2.0
        self._lane_change_from: Optional[float] = None
        # Index of the first phase that has not started yet; advances
        # monotonically, so the per-step phase lookup is O(1).
        self._phase_index = 0

    @property
    def rear_s(self) -> float:
        return self.state.s - self._half_length

    @property
    def front_s(self) -> float:
        return self.state.s + self._half_length

    def _active_phase(self, time: float) -> Optional[ManeuverPhase]:
        """The latest phase whose start time has passed, if any."""
        profile = self.profile
        index = self._phase_index
        while index < len(profile) and time >= profile[index].start_time:
            index += 1
        self._phase_index = index
        return profile[index - 1] if index > 0 else None

    def idm_accel(self, gap: float, leader_speed: float, desired_speed: float) -> float:
        """Intelligent-Driver-Model acceleration towards a leader.

        IDM with the standard over-speed modification: below
        ``desired_speed`` (which the maneuver profile supplies — the
        active phase target, or the initial speed for cruise scripts) the
        free-flow term is ``a * (1 - (v/v0)^4)``; above it, braking is
        bounded by ``-b * (1 - (v0/v)^4)`` so a scripted gentle stop near
        a leader does not turn into an emergency brake.  The gap-keeping
        interaction term against the leader ``gap`` metres ahead is added
        in both regimes.
        """
        idm = self.idm
        speed = self.state.speed
        approach = speed - leader_speed
        s_star = idm.min_gap + max(
            0.0,
            speed * idm.time_headway
            + speed * approach / (2.0 * math.sqrt(idm.max_accel * idm.comfortable_decel)),
        )
        interaction = s_star / max(gap, 0.1)
        if speed < desired_speed:
            ratio = speed / desired_speed
            ratio_sq = ratio * ratio
            free = idm.max_accel * (1.0 - ratio_sq * ratio_sq)
        elif speed > 1e-12:
            inverse = desired_speed / speed
            inverse_sq = inverse * inverse
            free = -idm.comfortable_decel * (1.0 - inverse_sq * inverse_sq)
        else:
            free = 0.0
        accel = free - idm.max_accel * interaction * interaction
        if accel < -idm.max_decel:
            return -idm.max_decel
        return accel

    def step(self, time: float, dt: float = DT, leader: Optional[object] = None) -> ActorState:
        """Advance the scripted maneuver by one control period.

        Args:
            time: Simulation time, s.
            dt: Integration step, s.
            leader: The vehicle directly ahead in this vehicle's lane
                (anything with ``rear_s`` and ``state.speed``), used only
                when :attr:`idm` car-following is enabled.  With ``idm``
                unset (the default) the integration is bit-identical to
                the profile-only script regardless of ``leader``.
        """
        state = self.state
        phase = self._active_phase(time)
        target = phase.target_speed if phase is not None else None
        accel = 0.0
        if target is not None:
            if state.speed > target:
                accel = -phase.rate
            elif state.speed < target:
                accel = phase.rate
        if self.idm is not None:
            if target is not None:
                self._idm_v0 = target
            if leader is not None:
                gap = leader.rear_s - self.front_s
                if gap < self.idm.interaction_range:
                    # IDM replaces the profile integration while a leader
                    # is within range; the script only supplies the
                    # desired speed, so gap keeping always wins.
                    following = self.idm_accel(gap, leader.state.speed, self._idm_v0)
                    state.accel = following
                    state.speed = max(0.0, state.speed + following * dt)
                    state.s += state.speed * dt
                    self._apply_lane_change(time)
                    return state
        state.accel = accel
        state.speed = max(0.0, state.speed + accel * dt)
        if accel < 0.0:
            state.speed = max(state.speed, target)
        elif accel > 0.0:
            state.speed = min(state.speed, target)
        state.s += state.speed * dt

        self._apply_lane_change(time)
        return state

    def _apply_lane_change(self, time: float) -> None:
        """Advance the scripted lateral maneuver, if one is active."""
        lane_change = self.lane_change
        if lane_change is not None and time >= lane_change.start_time:
            state = self.state
            if self._lane_change_from is None:
                self._lane_change_from = state.d
            progress = (time - lane_change.start_time) / lane_change.duration
            if progress >= 1.0:
                state.d = lane_change.target_d
            else:
                blend = 0.5 * (1.0 - math.cos(math.pi * progress))
                origin = self._lane_change_from
                state.d = origin + (lane_change.target_d - origin) * blend


def behavior_profile(
    behavior: LeadBehavior,
    target_speed: Optional[float],
    speed_change_rate: float = 1.0,
    speed_change_start: float = 10.0,
) -> Tuple[ManeuverPhase, ...]:
    """Compile a legacy :class:`LeadBehavior` into a maneuver profile."""
    if behavior is LeadBehavior.CRUISE:
        return ()
    if target_speed is None:
        raise ValueError("target_speed is required for non-cruise behaviours")
    return (
        ManeuverPhase(
            start_time=speed_change_start,
            target_speed=target_speed,
            rate=abs(speed_change_rate),
        ),
    )


class LeadVehicle(ScriptedVehicle):
    """Scripted lead vehicle travelling along the ego lane centreline.

    The legacy constructor (behaviour enum, single speed transition) is
    kept; it compiles into an equivalent one-phase maneuver profile.  Pass
    ``profile`` explicitly for multi-phase maneuvers.

    The legacy attributes (``behavior``, ``target_speed``,
    ``speed_change_rate``, ``speed_change_start``) are construction-time
    inputs kept for inspection only: the maneuver is compiled into
    ``profile`` once, so mutating them mid-run has no effect on the
    scripted motion.
    """

    def __init__(
        self,
        initial_s: float,
        initial_speed: float,
        behavior: LeadBehavior = LeadBehavior.CRUISE,
        target_speed: Optional[float] = None,
        speed_change_rate: float = 1.0,
        speed_change_start: float = 10.0,
        length: float = 4.6,
        width: float = 1.8,
        profile: Optional[Sequence[ManeuverPhase]] = None,
        lane_change: Optional[LaneChange] = None,
    ):
        """Create a lead vehicle.

        Args:
            initial_s: Initial arc-length position (front of ego + gap).
            initial_speed: Initial speed, m/s.
            behavior: One of the :class:`LeadBehavior` profiles.
            target_speed: Final speed for DECELERATE/ACCELERATE profiles.
            speed_change_rate: Magnitude of the speed change, m/s^2.
            speed_change_start: Simulation time at which the change starts.
            length / width: Body dimensions, m.
            profile: Piecewise maneuver profile; when given it replaces the
                ``behavior``/``target_speed`` single-transition script.
            lane_change: Optional scripted lateral maneuver (cut-out).
        """
        if profile is None:
            profile = behavior_profile(
                behavior, target_speed, speed_change_rate, speed_change_start
            )
        super().__init__(
            initial_s=initial_s,
            initial_speed=initial_speed,
            profile=profile,
            lane_change=lane_change,
            length=length,
            width=width,
            kind="lead",
        )
        self.behavior = behavior
        self.target_speed = initial_speed if target_speed is None else target_speed
        self.speed_change_rate = abs(speed_change_rate)
        self.speed_change_start = speed_change_start


class FollowerVehicle:
    """A simple human-driven vehicle behind the ego vehicle.

    The follower applies an intelligent-driver-model style control law with
    a perception/reaction delay; if the ego vehicle brakes to a stop
    without warning (hazard H2), the follower may not stop in time, which
    is the rear-end collision A2 from the paper's accident list.
    """

    def __init__(
        self,
        initial_s: float,
        initial_speed: float,
        reaction_delay: float = 1.2,
        max_decel: float = 6.0,
        desired_headway: float = 1.5,
        length: float = 4.6,
        width: float = 1.8,
    ):
        self.state = ActorState(s=initial_s, d=0.0, speed=initial_speed)
        self.reaction_delay = reaction_delay
        self.max_decel = max_decel
        self.desired_headway = desired_headway
        self.length = length
        self.width = width
        self._half_length = length / 2.0
        self._pending_gap_history = []  # (time, gap, ego_speed)

    @property
    def front_s(self) -> float:
        return self.state.s + self._half_length

    def step(self, time: float, ego_rear_s: float, ego_speed: float, dt: float = DT) -> ActorState:
        """Advance the follower towards the ego vehicle's rear bumper."""
        state = self.state
        gap = ego_rear_s - self.front_s
        # The follower reacts to the situation it perceived `reaction_delay`
        # seconds ago.
        self._pending_gap_history.append((time, gap, ego_speed))
        perceived = self._pending_gap_history[0]
        while self._pending_gap_history and time - self._pending_gap_history[0][0] >= self.reaction_delay:
            perceived = self._pending_gap_history.pop(0)
        perceived_gap, perceived_ego_speed = perceived[1], perceived[2]

        desired_gap = max(2.0, self.desired_headway * state.speed)
        closing_speed = state.speed - perceived_ego_speed
        accel = 0.6 * (perceived_gap - desired_gap) - 0.9 * closing_speed
        accel = clamp(accel, -self.max_decel, 1.5)
        state.accel = accel
        state.speed = max(0.0, state.speed + accel * dt)
        state.s += state.speed * dt
        return state

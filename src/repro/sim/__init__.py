"""Driving simulator substrate (CARLA substitute).

A 2-D kinematic driving simulator operating in a road-aligned (Frenet)
frame: the ego vehicle is a kinematic bicycle model, the lead vehicle is a
scripted longitudinal actor, and the road carries lane geometry, guardrails
and curvature.  The simulator runs at the paper's 100 Hz control rate
(10 ms steps, 5000 steps = 50 s per simulation).
"""

from repro.sim.road import Road, RoadSpec
from repro.sim.vehicle import EgoVehicle, VehicleParams, ActuatorCommand
from repro.sim.actors import (
    FollowerVehicle,
    IdmParams,
    LaneChange,
    LeadBehavior,
    LeadVehicle,
    ManeuverPhase,
    ScriptedVehicle,
)
from repro.sim.sensors import GpsSensor, RadarSensor, CameraModel, SensorNoise
from repro.sim.collision import CollisionDetector, LaneMonitor
from repro.sim.scenarios import (
    ActorSpec,
    Scenario,
    ScenarioSpec,
    SCENARIOS,
    build_scenario,
)
from repro.sim.world import World, WorldConfig

__all__ = [
    "Road",
    "RoadSpec",
    "EgoVehicle",
    "VehicleParams",
    "ActuatorCommand",
    "LeadVehicle",
    "FollowerVehicle",
    "LeadBehavior",
    "ScriptedVehicle",
    "IdmParams",
    "ManeuverPhase",
    "LaneChange",
    "GpsSensor",
    "RadarSensor",
    "CameraModel",
    "SensorNoise",
    "CollisionDetector",
    "LaneMonitor",
    "Scenario",
    "ScenarioSpec",
    "ActorSpec",
    "SCENARIOS",
    "build_scenario",
    "World",
    "WorldConfig",
]

"""Collision detection and lane monitoring.

The paper reports three accident classes:

* **A1** — collision with the lead vehicle,
* **A2** — rear-end collision (the ego vehicle stops and is hit from
  behind, causing traffic congestion),
* **A3** — collision with road-side objects (guardrail) or vehicles in the
  neighbouring lane,

and counts *lane invasion* events (a wheel crossing a lane line), which
occur even without attacks (Observation 1).
"""

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Sequence

from repro.sim.actors import FollowerVehicle, LeadVehicle, ScriptedVehicle
from repro.sim.road import Road
from repro.sim.vehicle import EgoVehicle


class AccidentType(Enum):
    """Accident classes from Section III-A of the paper."""

    LEAD_COLLISION = "A1"
    REAR_END_COLLISION = "A2"
    ROADSIDE_COLLISION = "A3"


@dataclass(frozen=True)
class CollisionEvent:
    """A detected accident."""

    accident: AccidentType
    time: float
    description: str


@dataclass
class LaneInvasionEvent:
    """A single lane-line crossing by the ego vehicle."""

    time: float
    side: str  # "left" or "right"


class CollisionDetector:
    """Detects A1/A2/A3 accidents from ground-truth geometry."""

    def __init__(self, road: Road):
        self.road = road
        self.events: List[CollisionEvent] = []

    @property
    def collided(self) -> bool:
        return bool(self.events)

    def first_event(self) -> Optional[CollisionEvent]:
        return self.events[0] if self.events else None

    def check(
        self,
        time: float,
        ego: EgoVehicle,
        lead: Optional[LeadVehicle] = None,
        follower: Optional[FollowerVehicle] = None,
        others: Sequence[ScriptedVehicle] = (),
    ) -> Optional[CollisionEvent]:
        """Check for a new collision at ``time``; records and returns it.

        ``others`` are further scripted vehicles (cut-in/cut-out traffic);
        hitting one is classified A3 when it sits outside the ego lane
        (neighbouring-lane traffic) and A1 when it blocks the ego lane.
        ``lead`` entries in ``others`` are skipped, so callers may pass a
        precomputed all-vehicles list every step.
        """
        event = self._check_lead(time, ego, lead)
        if event is None:
            for other in others:
                if other is lead:
                    continue
                event = self._check_other(time, ego, other)
                if event is not None:
                    break
        if event is None:
            event = self._check_roadside(time, ego)
        if event is None:
            event = self._check_rear_end(time, ego, follower)
        if event is not None:
            self.events.append(event)
        return event

    def check_context(self, ctx) -> Optional[CollisionEvent]:
        """Collision check over a kernel StepContext's precomputed kinematics.

        Semantically identical to :meth:`check` (same predicates, same
        event strings, same priority order A1 lead > others > A3 roadside
        > A2 rear-end), but reads the ego geometry the actuate stage
        already derived instead of walking the ``ego.state`` property
        chains; the golden-run suite pins the two paths together.
        """
        time = ctx.end_time
        front_s = ctx.ego_front_s
        rear_s = ctx.ego_rear_s
        d = ctx.ego_d
        ego_width = ctx.ego_width
        lead = ctx.lead

        event: Optional[CollisionEvent] = None
        if (
            lead is not None
            and front_s >= lead.rear_s
            and rear_s <= lead.front_s
            and abs(d - lead.state.d) < (ego_width + lead.width) / 2.0
        ):
            event = CollisionEvent(
                AccidentType.LEAD_COLLISION,
                time,
                f"ego front bumper reached lead vehicle at s={front_s:.1f} m",
            )
        if event is None:
            for other in ctx.others:
                if other is lead:
                    continue
                other_d = other.state.d
                if (
                    front_s >= other.rear_s
                    and rear_s <= other.front_s
                    and abs(d - other_d) < (ego_width + other.width) / 2.0
                ):
                    blocks_lane = abs(other_d) <= (self.road.spec.lane_width + other.width) / 2.0
                    accident = (
                        AccidentType.LEAD_COLLISION if blocks_lane else AccidentType.ROADSIDE_COLLISION
                    )
                    event = CollisionEvent(
                        accident,
                        time,
                        f"ego collided with {other.kind} vehicle at s={front_s:.1f} m "
                        f"(d={other_d:.2f} m)",
                    )
                    break
        if event is None:
            if ctx.ego_right_edge <= self.road.right_guardrail:
                event = CollisionEvent(
                    AccidentType.ROADSIDE_COLLISION,
                    time,
                    f"ego collided with right guardrail (d={d:.2f} m)",
                )
            elif ctx.ego_left_edge >= self.road.left_road_edge:
                event = CollisionEvent(
                    AccidentType.ROADSIDE_COLLISION,
                    time,
                    f"ego collided with left road edge (d={d:.2f} m)",
                )
        if event is None:
            follower = ctx.follower
            if (
                follower is not None
                and follower.front_s >= rear_s
                and abs(d - follower.state.d) < (ego_width + follower.width) / 2.0
            ):
                event = CollisionEvent(
                    AccidentType.REAR_END_COLLISION,
                    time,
                    "follower vehicle hit the stopped ego vehicle",
                )
        if event is not None:
            self.events.append(event)
        return event

    @staticmethod
    def _bodies_overlap(ego: EgoVehicle, other: ScriptedVehicle) -> bool:
        """Body-overlap predicate shared by every vehicle-vehicle check."""
        return (
            ego.front_s >= other.rear_s
            and ego.rear_s <= other.front_s
            and abs(ego.state.d - other.state.d) < (ego.params.width + other.width) / 2.0
        )

    def _check_lead(
        self, time: float, ego: EgoVehicle, lead: Optional[LeadVehicle]
    ) -> Optional[CollisionEvent]:
        if lead is None or not self._bodies_overlap(ego, lead):
            return None
        return CollisionEvent(
            AccidentType.LEAD_COLLISION,
            time,
            f"ego front bumper reached lead vehicle at s={ego.front_s:.1f} m",
        )

    def _check_other(
        self, time: float, ego: EgoVehicle, other: ScriptedVehicle
    ) -> Optional[CollisionEvent]:
        if not self._bodies_overlap(ego, other):
            return None
        # A vehicle counts as blocking the ego lane (A1) as soon as its
        # body overlaps the lane — mid-merge cut-ins included — not only
        # once its centre has crossed the lane line.
        blocks_lane = (
            abs(other.state.d) <= (self.road.spec.lane_width + other.width) / 2.0
        )
        accident = AccidentType.LEAD_COLLISION if blocks_lane else AccidentType.ROADSIDE_COLLISION
        return CollisionEvent(
            accident,
            time,
            f"ego collided with {other.kind} vehicle at s={ego.front_s:.1f} m "
            f"(d={other.state.d:.2f} m)",
        )

    def _check_roadside(self, time: float, ego: EgoVehicle) -> Optional[CollisionEvent]:
        if ego.right_edge <= self.road.right_guardrail:
            return CollisionEvent(
                AccidentType.ROADSIDE_COLLISION,
                time,
                f"ego collided with right guardrail (d={ego.state.d:.2f} m)",
            )
        if ego.left_edge >= self.road.left_road_edge:
            return CollisionEvent(
                AccidentType.ROADSIDE_COLLISION,
                time,
                f"ego collided with left road edge (d={ego.state.d:.2f} m)",
            )
        return None

    def _check_rear_end(
        self, time: float, ego: EgoVehicle, follower: Optional[FollowerVehicle]
    ) -> Optional[CollisionEvent]:
        if follower is None:
            return None
        longitudinal_overlap = follower.front_s >= ego.rear_s
        lateral_overlap = abs(ego.state.d - follower.state.d) < (ego.params.width + follower.width) / 2.0
        if longitudinal_overlap and lateral_overlap:
            return CollisionEvent(
                AccidentType.REAR_END_COLLISION,
                time,
                "follower vehicle hit the stopped ego vehicle",
            )
        return None


@dataclass
class LaneMonitorReport:
    """Summary of lane-keeping behaviour over a simulation."""

    invasion_events: List[LaneInvasionEvent] = field(default_factory=list)
    out_of_lane: bool = False
    out_of_lane_time: Optional[float] = None

    def invasions_per_second(self, duration: float) -> float:
        """Lane invasion event rate (events per second of simulation)."""
        if duration <= 0:
            return 0.0
        return len(self.invasion_events) / duration


class LaneMonitor:
    """Tracks lane invasions and the out-of-lane hazard condition (H3)."""

    def __init__(self, road: Road, out_of_lane_margin: float = 0.0):
        """Args:
            road: Road geometry.
            out_of_lane_margin: Extra lateral distance beyond the lane line
                the vehicle *centre* must exceed before the state counts as
                "out of lane" (hazard H3).
        """
        self.road = road
        self.out_of_lane_margin = out_of_lane_margin
        self.report = LaneMonitorReport()
        self._invading_left = False
        self._invading_right = False

    def check(self, time: float, ego: EgoVehicle) -> None:
        """Update invasion / out-of-lane state for the current step."""
        self.check_values(time, ego.left_edge, ego.right_edge, ego.state.d)

    def check_values(self, time: float, left_edge: float, right_edge: float, d: float) -> None:
        """Invasion / out-of-lane update from precomputed ego geometry.

        Kernel fast path: the detect stage passes the body edges the
        actuate stage already derived, so the monitor does not walk the
        ego property chain again.
        """
        left_invading = left_edge > self.road.left_lane_line
        right_invading = right_edge < self.road.right_lane_line

        if left_invading and not self._invading_left:
            self.report.invasion_events.append(LaneInvasionEvent(time, "left"))
        if right_invading and not self._invading_right:
            self.report.invasion_events.append(LaneInvasionEvent(time, "right"))
        self._invading_left = left_invading
        self._invading_right = right_invading

        centre_out = (
            d > self.road.left_lane_line + self.out_of_lane_margin
            or d < self.road.right_lane_line - self.out_of_lane_margin
        )
        if centre_out and not self.report.out_of_lane:
            self.report.out_of_lane = True
            self.report.out_of_lane_time = time

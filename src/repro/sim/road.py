"""Road geometry in a road-aligned (Frenet) frame.

The driving scenarios in the paper take place on a highway-like road that
curves to the left, with the ego vehicle initialised in the right lane,
close to the right guardrail (this asymmetry is what makes Steering-Right
attacks more effective than Steering-Left ones — Observation 5).

Positions are expressed as ``(s, d)``: ``s`` is the arc length travelled
along the ego lane's centreline and ``d`` the lateral offset from that
centreline, positive to the **left**.
"""

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RoadSpec:
    """Static description of the road.

    Attributes:
        lane_width: Width of each lane in metres.
        num_left_lanes: Number of additional lanes to the left of the ego
            lane (the paper's scenario has one neighbouring lane).
        right_shoulder: Distance from the ego lane's right line to the
            right guardrail.
        left_shoulder: Distance from the outermost left lane line to the
            left road edge / barrier.
        curve_start: Arc length at which the road begins to curve left.
        curve_transition: Length over which curvature ramps from zero to
            ``curvature_max``.
        curvature_max: Final (constant) curvature of the left curve, 1/m.
            Positive curvature turns left.
    """

    lane_width: float = 3.6
    num_left_lanes: int = 1
    right_shoulder: float = 0.6
    left_shoulder: float = 0.6
    curve_start: float = 150.0
    curve_transition: float = 200.0
    curvature_max: float = 0.0025

    def __post_init__(self):
        if self.lane_width <= 0:
            raise ValueError("lane_width must be positive")
        if self.num_left_lanes < 0:
            raise ValueError("num_left_lanes must be non-negative")
        if self.curve_transition <= 0:
            raise ValueError("curve_transition must be positive")


class Road:
    """A road with a straight section followed by a gentle left curve."""

    def __init__(self, spec: RoadSpec = RoadSpec()):
        self.spec = spec
        # The lateral landmarks are constants of the road; they are read on
        # every step by the lane/collision monitors, so they are plain
        # attributes rather than recomputed properties.
        self.left_lane_line = spec.lane_width / 2.0
        self.right_lane_line = -spec.lane_width / 2.0
        self.right_guardrail = self.right_lane_line - spec.right_shoulder
        self.left_road_edge = (
            self.left_lane_line + spec.num_left_lanes * spec.lane_width + spec.left_shoulder
        )

    def curvature(self, s: float) -> float:
        """Road centreline curvature at arc length ``s`` (1/m, + = left)."""
        spec = self.spec
        if s <= spec.curve_start:
            return 0.0
        progress = (s - spec.curve_start) / spec.curve_transition
        if progress >= 1.0:
            return spec.curvature_max
        # Smooth (cosine) ramp avoids a curvature step that would excite
        # the lateral controller unrealistically.
        return spec.curvature_max * 0.5 * (1.0 - math.cos(math.pi * progress))

    # Lateral landmarks (offsets from the ego lane centreline, + = left)
    # are set as attributes in ``__init__``: left_lane_line,
    # right_lane_line, right_guardrail, left_road_edge.

    def heading(self, s: float) -> float:
        """Heading of the road tangent at ``s`` relative to the start (rad).

        Integrated analytically over the piecewise curvature profile; used
        to convert Frenet trajectories back to Cartesian for Figure 7.
        """
        spec = self.spec
        if s <= spec.curve_start:
            return 0.0
        end_ramp = spec.curve_start + spec.curve_transition
        if s <= end_ramp:
            x = s - spec.curve_start
            # integral of kappa_max/2 * (1 - cos(pi x / L)) dx
            return spec.curvature_max * 0.5 * (
                x - (spec.curve_transition / math.pi) * math.sin(math.pi * x / spec.curve_transition)
            )
        heading_at_ramp_end = spec.curvature_max * 0.5 * spec.curve_transition
        return heading_at_ramp_end + spec.curvature_max * (s - end_ramp)

    def to_cartesian(self, s: float, d: float, ds: float = 0.5):
        """Convert a Frenet position to Cartesian ``(x, y)``.

        The centreline is integrated numerically with step ``ds``; accuracy
        of a few centimetres is ample for trajectory plots.
        """
        x = y = 0.0
        travelled = 0.0
        while travelled < s:
            step = min(ds, s - travelled)
            theta = self.heading(travelled + step / 2.0)
            x += step * math.cos(theta)
            y += step * math.sin(theta)
            travelled += step
        theta = self.heading(s)
        # Lateral offset is applied along the local normal (left of tangent).
        return x - d * math.sin(theta), y + d * math.cos(theta)


def curvature_columns(
    s: np.ndarray,
    curve_start: np.ndarray,
    curve_transition: np.ndarray,
    curvature_max: np.ndarray,
    out: np.ndarray,
) -> None:
    """Vectorised :meth:`Road.curvature` over per-run road parameters.

    Bit-identical to the scalar method for every row: the straight
    section, the finished ramp and the cosine ramp are computed with the
    same operation order (``np.cos`` matches ``math.cos`` to the last bit
    on this platform — pinned by the golden batch-equivalence suite).
    """
    progress = (s - curve_start) / curve_transition
    ramp = (curvature_max * 0.5) * (1.0 - np.cos(np.pi * progress))
    np.copyto(
        out,
        np.where(
            s <= curve_start,
            0.0,
            np.where(progress >= 1.0, curvature_max, ramp),
        ),
    )

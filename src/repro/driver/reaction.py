"""Driver-reaction simulator (Section IV-B of the paper).

Behaviour, as a four-phase state machine:

1. **Monitoring** — the driver perceives an event at the first control
   step where the ADAS raises an alert or the vehicle behaviour is
   anomalous (see :mod:`repro.driver.anomaly`).
2. **Reaction delay** — the driver starts physically acting
   ``reaction_time`` seconds later (2.5 s on average, per the AV
   literature the paper cites).
3. **Mitigation** — the driver overrides the ADAS.  For an unintended
   acceleration, unintended steering or an ADAS alert the driver applies
   a hard brake following the paper's Eq. 4,
   ``brake(t) = e^(10 t − 12) / (1 + e^(10 t − 12))``, and steers back
   towards the lane centre with the same build-up profile.  For
   unintended braking the driver releases the brake and accelerates back
   towards the set speed.
4. **Manual driving** — after ``mitigation_time`` seconds the immediate
   danger has been handled; the driver keeps manual control and drives
   normally (lane keeping plus safe car following) for the rest of the
   simulation.

Engaging the driver overrides (disengages) the ADAS, and the attack engine
stops attacking as soon as the driver engages (the simulation loop
notifies it).
"""

import math
from dataclasses import dataclass
from enum import Enum
from typing import List, Optional

from repro.driver.anomaly import AnomalyDetector, AnomalyObservation
from repro.messaging.bus import MessageBus, Subscription
from repro.sim.units import clamp
from repro.sim.vehicle import ActuatorCommand


def brake_response_curve(elapsed: float) -> float:
    """The paper's Eq. 4: normalised brake level ``t`` seconds after the
    driver starts braking (sigmoid reaching ~0.95 at 1.5 s)."""
    exponent = 10.0 * elapsed - 12.0
    # Guard against overflow for long mitigation times.
    if exponent > 60.0:
        return 1.0
    value = math.exp(exponent)
    return value / (1.0 + value)


class DriverPhase(Enum):
    """Phases of the driver state machine."""

    MONITORING = "monitoring"
    REACTING = "reacting"        # perceived, waiting out the reaction delay
    MITIGATING = "mitigating"
    MANUAL = "manual"


@dataclass(frozen=True)
class DriverParams:
    """Tuning of the simulated driver."""

    reaction_time: float = 2.5          # s between perception and physical action
    mitigation_time: float = 2.5        # s of emergency manoeuvre before normal manual driving
    max_brake_decel: float = 8.0        # m/s^2, hard-brake deceleration
    steer_correction_gain: float = 40.0     # deg of steering per metre of lateral error
    heading_correction_gain: float = 220.0  # deg of steering per rad of heading error
    max_steering_deg: float = 180.0
    manual_speed_gain: float = 0.4      # manual-driving speed tracking gain, 1/s
    manual_headway: float = 2.0         # s, manual-driving following headway
    manual_max_accel: float = 1.5       # m/s^2
    manual_max_brake: float = 4.0       # m/s^2
    enabled: bool = True                # False models a fully inattentive driver


@dataclass
class DriverDecision:
    """The driver's output for one control step."""

    engaged: bool = False
    command: Optional[ActuatorCommand] = None   # override command when engaged
    perceived: bool = False
    phase: DriverPhase = DriverPhase.MONITORING


class DriverReactionSimulator:
    """The alert human driver in the loop."""

    def __init__(
        self,
        message_bus: MessageBus,
        params: DriverParams = DriverParams(),
        detector: Optional[AnomalyDetector] = None,
    ):
        self.params = params
        self.detector = detector or AnomalyDetector()
        self._alert_sub: Subscription = message_bus.subscribe("alertEvent")
        self.perception_time: Optional[float] = None
        self.engagement_time: Optional[float] = None
        self.perceived_reason: Optional[str] = None
        self.anomalies: List[AnomalyObservation] = []
        # Snapshot of the previously observed command *values* (the kernel
        # reuses one ActuatorCommand object per cycle, so retaining the
        # reference would alias the current command).
        self._previous_command = ActuatorCommand()
        self._has_previous = False

    # -- state properties ---------------------------------------------------

    @property
    def perceived(self) -> bool:
        """True once the driver has noticed an alert or anomaly."""
        return self.perception_time is not None

    @property
    def engaged(self) -> bool:
        """True once the driver has physically taken over."""
        return self.engagement_time is not None

    def phase(self, time: float) -> DriverPhase:
        """Current phase of the driver state machine at ``time``."""
        if not self.perceived:
            return DriverPhase.MONITORING
        if time - self.perception_time < self.params.reaction_time:
            return DriverPhase.REACTING
        if self.engagement_time is None or time - self.engagement_time < self.params.mitigation_time:
            return DriverPhase.MITIGATING
        return DriverPhase.MANUAL

    # -- main update --------------------------------------------------------

    def update(
        self,
        time: float,
        observed_command: ActuatorCommand,
        v_ego: float,
        cruise_speed: float,
        lateral_offset: float,
        heading_error: float,
        current_steering_deg: float,
        lead_gap: Optional[float] = None,
        lead_speed: Optional[float] = None,
        out: Optional[DriverDecision] = None,
    ) -> DriverDecision:
        """Advance the driver model by one control step.

        Args:
            time: Simulation time, s.
            observed_command: The actuator command currently being executed
                (what the driver feels the car doing).
            v_ego: Current ego speed, m/s.
            cruise_speed: Set cruise speed, m/s.
            lateral_offset: Vehicle offset from lane centre, m (+left).
            heading_error: Heading relative to the lane, rad.
            current_steering_deg: Measured steering wheel angle, degrees.
            lead_gap / lead_speed: What the driver sees of the lead vehicle
                (used for car-following once driving manually).
            out: Optional reused :class:`DriverDecision` to write into
                (kernel fast path); every field is overwritten.
        """
        decision = out if out is not None else DriverDecision()
        decision.engaged = False
        decision.command = None
        decision.perceived = False
        decision.phase = DriverPhase.MONITORING

        if not self.params.enabled:
            self._remember_command(observed_command)
            return decision

        self._perceive(time, observed_command, v_ego, cruise_speed, lateral_offset)

        if not self.perceived:
            return decision

        decision.perceived = True
        if time - self.perception_time < self.params.reaction_time:
            decision.phase = DriverPhase.REACTING
            return decision

        if self.engagement_time is None:
            self.engagement_time = time

        steering = self._steering_correction(time, lateral_offset, heading_error, current_steering_deg)

        decision.engaged = True
        if time - self.engagement_time < self.params.mitigation_time:
            decision.command = self._mitigation_command(time, v_ego, cruise_speed, steering)
            decision.phase = DriverPhase.MITIGATING
            return decision

        decision.command = self._manual_driving_command(
            v_ego, cruise_speed, steering, lead_gap, lead_speed
        )
        decision.phase = DriverPhase.MANUAL
        return decision

    # -- internals ----------------------------------------------------------

    def _perceive(
        self,
        time: float,
        observed_command: ActuatorCommand,
        v_ego: float,
        cruise_speed: float,
        lateral_offset: float,
    ) -> None:
        """Check alerts and anomalies; latch the first perception."""
        if not self.perceived:
            for event in self._alert_sub.drain():
                self.perception_time = time
                self.perceived_reason = f"alert:{event.data.name}"
                break
        else:
            self._alert_sub.drain()

        if not self.perceived:
            anomaly = self.detector.detect(
                time,
                observed_command,
                self._previous_command if self._has_previous else None,
                v_ego,
                cruise_speed,
                lateral_offset=lateral_offset,
            )
            if anomaly is not None:
                self.anomalies.append(anomaly)
                self.perception_time = time
                self.perceived_reason = f"anomaly:{anomaly.kind}"
        self._remember_command(observed_command)

    def _remember_command(self, observed_command: ActuatorCommand) -> None:
        """Snapshot the observed command values for the next step's deltas."""
        previous = self._previous_command
        previous.accel = observed_command.accel
        previous.brake = observed_command.brake
        previous.steering_angle_deg = observed_command.steering_angle_deg
        self._has_previous = True

    def _steering_correction(
        self,
        time: float,
        lateral_offset: float,
        heading_error: float,
        current_steering_deg: float,
    ) -> float:
        """Steering the driver applies: blend from current towards lane centre."""
        effort = brake_response_curve(time - self.engagement_time)
        target = clamp(
            -self.params.steer_correction_gain * lateral_offset
            - self.params.heading_correction_gain * heading_error,
            -self.params.max_steering_deg,
            self.params.max_steering_deg,
        )
        return (1.0 - effort) * current_steering_deg + effort * target

    def _mitigation_command(
        self, time: float, v_ego: float, cruise_speed: float, steering: float
    ) -> ActuatorCommand:
        """Emergency manoeuvre right after taking over."""
        effort = brake_response_curve(time - self.engagement_time)
        if self.perceived_reason == "anomaly:hard_brake":
            # Unintended braking: release the brake and accelerate back
            # towards the set speed.
            accel = effort * clamp(
                self.params.manual_speed_gain * (cruise_speed - v_ego),
                0.0,
                self.params.manual_max_accel,
            )
            return ActuatorCommand(accel=accel, brake=0.0, steering_angle_deg=steering)
        # Unintended acceleration, unintended steering, or an ADAS alert:
        # hard brake per Eq. 4 plus steering correction.
        brake = effort * self.params.max_brake_decel
        return ActuatorCommand(accel=0.0, brake=brake, steering_angle_deg=steering)

    def _manual_driving_command(
        self,
        v_ego: float,
        cruise_speed: float,
        steering: float,
        lead_gap: Optional[float],
        lead_speed: Optional[float],
    ) -> ActuatorCommand:
        """Normal manual driving after the emergency has been handled."""
        params = self.params
        target_speed = cruise_speed
        if lead_gap is not None and lead_speed is not None:
            desired_gap = 4.0 + params.manual_headway * v_ego
            if lead_gap < desired_gap:
                target_speed = min(target_speed, lead_speed)
            if lead_gap < desired_gap / 2.0:
                target_speed = min(target_speed, lead_speed * 0.5)
        accel = clamp(
            params.manual_speed_gain * (target_speed - v_ego),
            -params.manual_max_brake,
            params.manual_max_accel,
        )
        return ActuatorCommand(
            accel=max(0.0, accel), brake=max(0.0, -accel), steering_angle_deg=steering
        )

"""Detection of vehicle-behaviour anomalies perceivable by the driver.

Following the paper's driver-reaction simulator, an anomaly is any of:

* hard braking (braking demand above the ISO-style deceleration limit),
* an unexpected increase in acceleration beyond the acceleration limit,
* a steering change faster than the per-frame steering limit,
* the vehicle speed exceeding the set cruise speed by more than 10 %.

Anomalies are evaluated per 10 ms step; as in the paper, a single
anomalous step is enough to attract the driver's attention.
"""

from dataclasses import dataclass
from typing import Optional

from repro.adas.limits import ISO_SAFETY_LIMITS, SafetyLimits
from repro.sim.vehicle import ActuatorCommand


@dataclass(frozen=True)
class AnomalyObservation:
    """A perceived anomaly."""

    time: float
    kind: str        # "hard_brake" | "acceleration" | "steering" | "overspeed"
    value: float


class AnomalyDetector:
    """Stateless per-step anomaly check against a limit set.

    The steering-rate threshold is intentionally set just above OpenPilot's
    own output limit (0.5°/frame): the driver cannot distinguish a
    legitimate ALC correction from a maliciously ramped steering command
    whose per-frame change stays within the normal actuation envelope —
    which is exactly why the paper finds steering attacks cannot be halted
    by the driver (Observation 5).  A driver *does* notice the vehicle
    clearly leaving its lane, which is covered by the lane-departure check.
    """

    def __init__(
        self,
        limits: SafetyLimits = ISO_SAFETY_LIMITS,
        steer_delta_threshold_deg: float = 0.6,
        lane_departure_threshold: float = 1.4,
    ):
        self.limits = limits
        self.steer_delta_threshold_deg = steer_delta_threshold_deg
        self.lane_departure_threshold = lane_departure_threshold

    def detect(
        self,
        time: float,
        command: ActuatorCommand,
        previous_command: Optional[ActuatorCommand],
        v_ego: float,
        cruise_speed: float,
        lateral_offset: float = 0.0,
    ) -> Optional[AnomalyObservation]:
        """Return the first anomaly found at this step, if any."""
        if command.brake > -self.limits.brake_min + 1e-9:
            return AnomalyObservation(time, "hard_brake", command.brake)
        if command.accel > self.limits.accel_max + 1e-9:
            return AnomalyObservation(time, "acceleration", command.accel)
        if previous_command is not None:
            steer_delta = command.steering_angle_deg - previous_command.steering_angle_deg
            if abs(steer_delta) > self.steer_delta_threshold_deg + 1e-9:
                return AnomalyObservation(time, "steering", steer_delta)
        if cruise_speed > 0 and v_ego > self.limits.cruise_overspeed_factor * cruise_speed:
            return AnomalyObservation(time, "overspeed", v_ego)
        if abs(lateral_offset) > self.lane_departure_threshold:
            return AnomalyObservation(time, "lane_departure", lateral_offset)
        return None

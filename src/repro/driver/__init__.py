"""Driver-reaction simulator.

Models the alert human driver of the paper's experiments (Section IV-B):
the driver perceives ADAS alerts and behavioural anomalies immediately,
physically reacts after the average 2.5 s driver reaction time, applies a
hard brake following the exponential brake curve of Eq. 4, and corrects
the steering.  The attack engine stops attacking as soon as the driver
engages.
"""

from repro.driver.anomaly import AnomalyDetector, AnomalyObservation
from repro.driver.reaction import DriverReactionSimulator, DriverParams, DriverDecision

__all__ = [
    "AnomalyDetector",
    "AnomalyObservation",
    "DriverReactionSimulator",
    "DriverParams",
    "DriverDecision",
]

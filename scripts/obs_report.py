"""Post-mortem CLI over the event journal and flight-record artifacts.

Subcommands:

* ``timeline`` — the causal event timeline of a journal (optionally one
  job's slice): every record on one line, warnings/errors flagged;
* ``jobs`` — one summary line per job rebuilt from the journal (status,
  runs served, chunks, retries/respawns/quarantines, cache traffic,
  every quarantined fingerprint);
* ``hazards`` — the forensics view of each flight record in a
  directory: identity, flush trigger, and the final captured cycles as
  a table;
* ``run`` — every journal event touching one task fingerprint (prefix
  match), for tracing a single simulation across retries and chunks.

Usage::

    PYTHONPATH=src python scripts/obs_report.py timeline --journal runs/journal.jsonl
    PYTHONPATH=src python scripts/obs_report.py jobs --journal runs/journal.jsonl
    PYTHONPATH=src python scripts/obs_report.py hazards --flight-dir runs/flight
    PYTHONPATH=src python scripts/obs_report.py run --journal runs/journal.jsonl \
        --fingerprint "scenario=S2 attack=deceleration"
"""

import argparse
import sys

from repro.obs.journal import read_journal
from repro.obs.query import (
    hazard_view,
    iter_flight_records,
    job_summaries,
    run_events,
    timeline_lines,
)


def cmd_timeline(args) -> int:
    records = read_journal(args.journal)
    lines = timeline_lines(records, job_id=args.job)
    for line in lines:
        print(line)
    if not lines:
        print("(no events)")
    return 0


def cmd_jobs(args) -> int:
    lines = job_summaries(read_journal(args.journal))
    for line in lines:
        print(line)
    if not lines:
        print("(no jobs)")
    return 0


def cmd_hazards(args) -> int:
    shown = 0
    for record in iter_flight_records(args.flight_dir):
        print(hazard_view(record, final_cycles=args.cycles))
        print()
        shown += 1
    if not shown:
        print(f"(no flight records under {args.flight_dir})")
    return 0


def cmd_run(args) -> int:
    events = run_events(read_journal(args.journal), args.fingerprint)
    for line in timeline_lines(events):
        print(line)
    if not events:
        print(f"(no events match fingerprint prefix {args.fingerprint!r})")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    commands = parser.add_subparsers(dest="command", required=True)

    timeline = commands.add_parser("timeline", help="causal event timeline")
    timeline.add_argument("--journal", required=True)
    timeline.add_argument("--job", type=int, default=None, help="restrict to one job id")
    timeline.set_defaults(func=cmd_timeline)

    jobs = commands.add_parser("jobs", help="per-job causal summaries")
    jobs.add_argument("--journal", required=True)
    jobs.set_defaults(func=cmd_jobs)

    hazards = commands.add_parser("hazards", help="flight-record forensics")
    hazards.add_argument("--flight-dir", required=True)
    hazards.add_argument("--cycles", type=int, default=20, help="final cycles to show")
    hazards.set_defaults(func=cmd_hazards)

    run = commands.add_parser("run", help="events of one task fingerprint")
    run.add_argument("--journal", required=True)
    run.add_argument("--fingerprint", required=True, help="fingerprint prefix to match")
    run.set_defaults(func=cmd_run)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

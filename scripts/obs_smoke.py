"""CI obs-smoke gate: journal replay, flight-record forensics, chaos events.

Four checks over the observability layer, at smoke scale:

1. **kill & replay** — a child process runs a service job and hard-kills
   itself (``os._exit``) mid-job; the parent replays the child's journal
   and requires it to be an event-for-event prefix of an uninterrupted
   run of the same job, with :func:`replay_jobs` reconstructing the
   in-flight state (status ``running``, exact completed-run count);
2. **hazard forensics** — a hazardous mini-campaign with the flight
   recorder on: every hazardous run must leave a parseable flight
   record whose final sample matches the run's recorded trajectory tail
   bit for bit;
3. **chaos correlation** — a supervised campaign under injected worker
   faults must journal the recovery trail (``supervisor.retry`` /
   ``supervisor.respawn``) with the caller's bound correlation id on
   every record;
4. **post-mortem CLI** — ``obs_report`` must render the timeline, job
   summary and hazard views of the artifacts produced above.

Exits non-zero (assertion) on any violation.  Usage::

    PYTHONPATH=src python scripts/obs_smoke.py [--out-dir DIR]
"""

import argparse
import asyncio
import os
import subprocess
import sys
from collections import Counter

from repro.core.attack_types import AttackType
from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.engine import SimulationConfig, run_simulation
from repro.obs.journal import EventJournal, job_event_stream, read_journal, replay_jobs
from repro.obs.query import (
    iter_flight_records,
    load_flight_record,
    matches_trajectory_tail,
)
from repro.obs.recorder import FlightRecorderConfig
from repro.resilience.chaos import ChaosPolicy, FaultSpec
from repro.resilience.supervisor import SupervisionPolicy, run_supervised_campaign
from repro.service import CampaignService, CampaignJobSpec

import obs_report

#: The service job both the uninterrupted and the killed run execute.
_SERVICE_GRID = CampaignConfig(
    scenarios=("S1",),
    initial_distances=(60.0,),
    attack_types=(AttackType.DECELERATION,),
    repetitions=6,
    max_steps=150,
)
_CHUNK_RUNS = 2


async def _service_job(journal_path: str, kill_after_progress: bool) -> None:
    """Run the smoke job through a journaled service, optionally dying mid-job."""
    journal = EventJournal(journal_path)
    service = CampaignService(concurrency=1, journal=journal)
    await service.start()
    job = await service.submit(CampaignJobSpec(config=_SERVICE_GRID, chunk_runs=_CHUNK_RUNS))
    async for event in service.events(job):
        if kill_after_progress and event.kind == "progress":
            # Simulated process death: no journal.close(), no service.stop(),
            # no flush beyond the per-record fsync already paid.
            os._exit(1)
    await service.result(job)
    await service.stop()
    journal.close()


def check_kill_and_replay(out_dir: str) -> None:
    baseline_path = os.path.join(out_dir, "journal-uninterrupted.jsonl")
    killed_path = os.path.join(out_dir, "journal-killed.jsonl")

    asyncio.run(_service_job(baseline_path, kill_after_progress=False))

    child = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--child-kill", killed_path],
        cwd=os.path.dirname(os.path.abspath(__file__)),
        env={**os.environ, "PYTHONPATH": os.pathsep.join(
            [os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")]
            + ([os.environ["PYTHONPATH"]] if os.environ.get("PYTHONPATH") else [])
        )},
        timeout=600,
    )
    assert child.returncode == 1, f"child should die mid-job, exited {child.returncode}"

    baseline = job_event_stream(read_journal(baseline_path), job_id=0)
    killed = job_event_stream(read_journal(killed_path), job_id=0)
    assert len(killed) >= 3, f"killed journal too short to be mid-job: {killed}"
    assert len(killed) < len(baseline), "child did not die before job completion"
    assert killed == baseline[: len(killed)], (
        "killed journal is not an event-for-event prefix of the uninterrupted run:\n"
        f"killed:   {killed}\nbaseline: {baseline[: len(killed)]}"
    )

    replay = replay_jobs(read_journal(killed_path))[0]
    completed = killed[-1].get("completed", 0)
    assert replay.status == "running", f"replayed status {replay.status!r} != 'running'"
    assert replay.completed == completed and replay.total == _SERVICE_GRID.total_runs, (
        f"replay lost progress: {replay}"
    )
    print(
        f"kill & replay OK: died after {len(killed)}/{len(baseline)} events, "
        f"replayed to status=running {replay.completed}/{replay.total} runs"
    )


def check_hazard_forensics(out_dir: str) -> None:
    flight_dir = os.path.join(out_dir, "flight")
    recorder = FlightRecorderConfig(output_dir=flight_dir, capacity=200)
    hazardous = 0
    for seed in range(6):
        config = SimulationConfig(
            scenario="S2",
            initial_distance=40.0,
            seed=seed,
            attack_type=AttackType.DECELERATION,
            record_trajectory=True,
        )
        from repro.core.strategies import strategy_by_name

        result = run_simulation(config, strategy_by_name("Context-Aware"), recorder=recorder)
        if not (result.hazards or result.accidents or result.alerts):
            continue
        hazardous += 1
        records = [
            r for r in iter_flight_records(flight_dir) if r.meta.get("seed") == seed
        ]
        assert records, f"hazardous run seed={seed} left no flight record"
        record = load_flight_record(records[-1].path)  # full parse round-trip
        assert matches_trajectory_tail(record, result.trajectory), (
            f"flight record {record.path} does not match the trajectory tail bit-for-bit"
        )
    assert hazardous > 0, "smoke grid produced no hazardous runs to check"
    print(f"hazard forensics OK: {hazardous} hazardous runs, every black box matches its trajectory tail")


def check_chaos_correlation(out_dir: str) -> None:
    journal_path = os.path.join(out_dir, "journal-chaos.jsonl")
    journal = EventJournal(journal_path)
    campaign = Campaign(
        CampaignConfig(
            scenarios=("S1",),
            initial_distances=(60.0,),
            attack_types=(AttackType.DECELERATION,),
            repetitions=6,
            max_steps=100,
        )
    )
    chaos = ChaosPolicy(
        faults=(
            FaultSpec(kind="error", task_index=1, times=1),
            FaultSpec(kind="crash", task_index=3, times=1),
        ),
        state_dir=os.path.join(out_dir, "chaos-state"),
        seed=7,
    )
    outcome = run_supervised_campaign(
        campaign,
        policy=SupervisionPolicy(max_chunk_attempts=3, backoff_base=0.0),
        workers=2,
        chunk_size=2,
        chaos=chaos,
        journal=journal.bind(job_id=0),
    )
    journal.close()
    records = read_journal(journal_path)
    kinds = Counter(record["kind"] for record in records)
    assert len(outcome.completed_results) == 6, f"chaos run lost results: {outcome.report}"
    assert kinds["supervisor.retry"] == outcome.report.retries > 0, (
        f"retries not journaled: {kinds} vs report {outcome.report.retries}"
    )
    assert kinds["supervisor.respawn"] == outcome.report.pool_respawns > 0, (
        f"respawns not journaled: {kinds} vs report {outcome.report.pool_respawns}"
    )
    assert all(record.get("job_id") == 0 for record in records), (
        "bound correlation id missing from a supervised event"
    )
    print(f"chaos correlation OK: {dict(kinds)} all carrying job_id=0")


def check_cli(out_dir: str) -> None:
    baseline = os.path.join(out_dir, "journal-uninterrupted.jsonl")
    for argv in (
        ["timeline", "--journal", baseline],
        ["jobs", "--journal", baseline],
        ["run", "--journal", baseline, "--fingerprint", "scenario="],
        ["hazards", "--flight-dir", os.path.join(out_dir, "flight"), "--cycles", "5"],
    ):
        code = obs_report.main(argv)
        assert code == 0, f"obs_report {argv} exited {code}"
    print("post-mortem CLI OK: timeline, jobs, run and hazards views all render")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out-dir", default="obs-smoke-out")
    parser.add_argument("--child-kill", metavar="JOURNAL", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.child_kill is not None:
        asyncio.run(_service_job(args.child_kill, kill_after_progress=True))
        raise AssertionError("child survived past the kill point")

    os.makedirs(args.out_dir, exist_ok=True)
    check_kill_and_replay(args.out_dir)
    check_hazard_forensics(args.out_dir)
    check_chaos_correlation(args.out_dir)
    check_cli(args.out_dir)
    print("obs smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

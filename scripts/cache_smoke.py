"""CI cache-smoke gate: cold → warm → corrupt-and-repair, at smoke scale.

Three passes of the smoke-scale Table IV campaign against one persistent
run cache, each pass through a *fresh* :class:`RunCache` handle so its
counters describe that pass alone:

1. **cold** — empty cache: every run is a miss, every result is written;
2. **warm** — same grid: zero simulations paid (``misses == 0``,
   ``hits == total``) and the result is bit-identical to the cold pass;
3. **repair** — one blob is corrupted in place: exactly that entry is
   detected (``corruptions == 1``), quarantined, recomputed
   (``misses == 1``, ``writes == 1``) and rewritten, while every other
   entry still hits; the result is again bit-identical.

Exits non-zero (assertion) on any violation.  Usage::

    PYTHONPATH=src python scripts/cache_smoke.py [--cache-dir DIR]
"""

import argparse
import glob
import os
import sys

from repro.experiments.scale import ExperimentScale
from repro.experiments.table4 import run_table4
from repro.service import RunCache


def run_pass(label: str, cache_dir: str):
    cache = RunCache(cache_dir)
    result = run_table4(ExperimentScale.smoke(), cache=cache)
    stats = cache.stats
    print(f"{label:>6}: {stats.as_dict()}")
    assert stats.bypasses == 0, f"{label} pass bypassed the cache: {stats.as_dict()}"
    return result, stats


def signature(result):
    """Everything that must be bit-identical across passes.

    The raw per-strategy runs plus the formatted table — *not* the
    summary dataclasses directly, whose NaN TTH fields (attack-free
    rows) break ``==`` even for identical bits.
    """
    return (result.runs, result.format())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cache-dir", default="run-cache")
    args = parser.parse_args(argv)

    cold, cold_stats = run_pass("cold", args.cache_dir)
    total = cold_stats.misses
    assert total > 0 and cold_stats.writes == total and cold_stats.hits == 0, (
        f"cold pass did not populate the cache: {cold_stats.as_dict()}"
    )

    warm, warm_stats = run_pass("warm", args.cache_dir)
    assert warm_stats.misses == 0, (
        f"warm rerun paid {warm_stats.misses} simulations: {warm_stats.as_dict()}"
    )
    assert warm_stats.hits == total, f"expected {total} hits: {warm_stats.as_dict()}"
    assert signature(warm) == signature(cold), "warm rerun is not bit-identical to the cold pass"

    blobs = sorted(glob.glob(os.path.join(args.cache_dir, "*", "*", "*.json.z")))
    assert len(blobs) == total, f"expected {total} blobs, found {len(blobs)}"
    victim = blobs[0]
    with open(victim, "wb") as handle:
        handle.write(b"flipped bits, truncated payload")
    print(f"corrupted {os.path.relpath(victim, args.cache_dir)}")

    repaired, repair_stats = run_pass("repair", args.cache_dir)
    assert repair_stats.corruptions == 1, (
        f"corruption not detected exactly once: {repair_stats.as_dict()}"
    )
    assert repair_stats.misses == 1 and repair_stats.writes == 1, (
        f"expected exactly the corrupted entry recomputed: {repair_stats.as_dict()}"
    )
    assert repair_stats.hits == total - 1, (
        f"healthy entries should still hit: {repair_stats.as_dict()}"
    )
    assert signature(repaired) == signature(cold), "repair pass is not bit-identical to the cold pass"
    assert os.path.exists(victim), "recomputed blob was not written back"
    assert RunCache(args.cache_dir).get(
        os.path.basename(victim).removesuffix(".json.z")
    ) is not None, "rewritten blob does not verify"

    print(
        f"cache smoke OK: {total} runs — warm paid 0, "
        "corrupt blob detected, quarantined and repaired"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
